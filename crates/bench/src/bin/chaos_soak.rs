//! `chaos_soak` — deterministic seed-sweep fault-injection soak.
//!
//! For every NPB kernel, every seed, and every network mode, derive an
//! ordered multi-fault [`ChaosPlan`] (`ChaosPlan::from_seed`, which may add
//! its own seed-derived drop/duplication/reorder component), run the kernel
//! under the C³ protocol via the unified `c3::Job` builder — faults land at
//! pragmas, at arbitrary substrate operations (mid-collective,
//! mid-control-plane, mid-restore-handshake), in the torn-commit window,
//! and mid-replay, while the network may reorder, drop, and duplicate —
//! and compare the recovered result bit-for-bit against the failure-free
//! raw-substrate baseline.
//!
//! The sweep is the full cross-product *chaos seeds × network models*: an
//! in-order reliable fabric, `ReorderModel::Random` with nonzero
//! drop/duplication rates (the ROADMAP "chaos × reordering" item), and a
//! tight bounded-mailbox fabric (`mailbox_capacity = 2·nranks`) where
//! senders park under backpressure — the ROADMAP "backpressure /
//! congestion modeling" item.
//!
//! Any divergent seed is greedily shrunk (`c3::shrink_plan`) to a minimal
//! reproduction — over the network-fault component as well as the
//! fail-stop schedule — by re-running candidate plans; a synthetic
//! known-bad oracle demonstrates the shrinker on every invocation so the
//! reduction machinery itself stays exercised while the protocol is
//! healthy.
//!
//! The sweep also crosses a **checkpoint-mode axis** — `CkptMode::Full`
//! against `CkptMode::Incremental { every_n: 4 }` with plane-compressed
//! deltas — so every seed validates recovery through delta chains and the
//! harness measures what the incremental representation saves.
//!
//! Emits `BENCH_recovery.json` (working directory or `$BENCH_OUT_DIR`) with
//! per-(kernel, network, ckpt mode) restart counts, §6.5-style restart-cost
//! percentiles (`last_commit_wall_ns` of the surviving incarnation), and
//! checkpoint-volume percentiles (`ckpt_line_bytes` summed across ranks),
//! each entry recording the network model and checkpoint mode it ran under.
//!
//! ```text
//! chaos_soak [--seeds N] [--base-seed S] [--quick] [--jobs J] [--kernels cg,ft,...]
//! ```

use c3::{
    shrink_plan, C3Config, C3Error, ChaosPlan, ChaosSpace, CkptPolicy, Clock, FailAt, FailurePlan,
    Job, NetFault,
};
use c3_bench::{Align, Table};
use mpisim::{JobSpec, NetModel};
use statesave::TempStore;
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// The network-model axis of the sweep.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NetMode {
    /// In-order reliable fabric (the seed's behavior).
    Reliable,
    /// Random cross-signature reordering plus nonzero drop/duplication.
    Faulty,
    /// Bounded mailboxes at the 2·nranks floor: senders park under
    /// backpressure whenever a burst outruns the receiver, exercising the
    /// protocol's flow-control assumptions (the paper's buffered-send
    /// discussion) on every seed.
    TightMailbox,
}

impl NetMode {
    const ALL: [NetMode; 3] = [NetMode::Reliable, NetMode::Faulty, NetMode::TightMailbox];

    /// The base network model for one run (the plan's own `NetFault`
    /// component, if any, is merged on top by the builder).
    fn model(self, seed: u64, nranks: usize) -> NetModel {
        match self {
            NetMode::Reliable => NetModel::reliable().seed(seed),
            NetMode::Faulty => NetModel::reorder(seed).drop_rate(15).duplicate_rate(10),
            NetMode::TightMailbox => NetModel::reliable().seed(seed).mailbox_capacity(2 * nranks),
        }
    }

    fn name(self) -> &'static str {
        match self {
            NetMode::Reliable => "reliable",
            NetMode::Faulty => "reorder+drop15+dup10",
            NetMode::TightMailbox => "tight-mailbox",
        }
    }
}

/// The checkpoint-representation axis of the sweep ([`c3::CkptMode`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum ModeAxis {
    /// Every commit writes the full line sections (the seed's behavior).
    Full,
    /// Base-plus-delta chains of length 4 with plane-compressed payloads —
    /// the configuration the incremental-checkpointing claims are made on.
    Incr4,
}

impl ModeAxis {
    const ALL: [ModeAxis; 2] = [ModeAxis::Full, ModeAxis::Incr4];

    fn apply(self, cfg: C3Config) -> C3Config {
        match self {
            ModeAxis::Full => cfg,
            ModeAxis::Incr4 => {
                cfg.ckpt_mode(c3::CkptMode::Incremental { every_n: 4 }).compress_deltas()
            }
        }
    }

    fn name(self) -> &'static str {
        match self {
            ModeAxis::Full => "full",
            ModeAxis::Incr4 => "incr4",
        }
    }
}

/// One chaos run's observables.
struct RunOutcome {
    /// Per-rank result bits (bit-exact comparison basis).
    bits: Vec<u64>,
    restarts: u32,
    fired: u32,
    /// Wall ns from final-incarnation start to its last checkpoint commit,
    /// max across ranks (0 when the surviving incarnation never committed).
    wall_ns: u64,
    /// Recovery-line state bytes written by the surviving incarnation,
    /// summed across ranks (`C3Stats::ckpt_line_bytes`): the per-mode
    /// checkpoint volume, excluding the mode-independent late log.
    ckpt_bytes: u64,
}

/// The failure-free raw-substrate run of one kernel.
type BaselineFn = Box<dyn Fn(&JobSpec) -> Vec<u64> + Send + Sync>;
/// One protocol-instrumented chaos run of one kernel.
type ChaosFn = Box<dyn Fn(&Job, &ChaosPlan) -> Result<RunOutcome, String> + Send + Sync>;

/// A kernel wired for both the raw baseline and chaos runs.
struct Kernel {
    name: &'static str,
    nranks: usize,
    /// Commit cadence (`CkptPolicy::EveryNth`). Most kernels commit every
    /// third pragma; the state-carrying volume kernels (bt, smg) commit at
    /// every pragma so delta chains track pragma-to-pragma state drift.
    every: u64,
    space: ChaosSpace,
    baseline: BaselineFn,
    chaos: ChaosFn,
}

macro_rules! kernel {
    ($name:literal, $module:ident, $nranks:expr, $every:expr, $cfg:expr, $max_pragma:expr, $max_op:expr) => {{
        let cfg = $cfg;
        Kernel {
            name: $name,
            nranks: $nranks,
            every: $every,
            space: ChaosSpace { nranks: $nranks, max_pragma: $max_pragma, max_op: $max_op },
            baseline: Box::new(move |spec| {
                let out = mpisim::launch(spec, move |ctx| npb::$module::run(ctx, &cfg))
                    .unwrap_or_else(|e| panic!("{} baseline failed: {e}", $name));
                out.results.iter().map(|r| r.to_bits()).collect()
            }),
            chaos: Box::new(move |job, plan| {
                let rec = job
                    .clone()
                    .chaos(plan.clone())
                    .run(move |ctx| {
                        let r = npb::$module::run(ctx, &cfg).map_err(C3Error::Mpi)?;
                        let s = ctx.stats();
                        Ok((r, s.last_commit_wall_ns, s.ckpt_line_bytes))
                    })
                    .map_err(|e| e.to_string())?;
                Ok(RunOutcome {
                    bits: rec.handle.results.iter().map(|(r, _, _)| r.to_bits()).collect(),
                    restarts: rec.restarts,
                    fired: rec.faults_fired,
                    wall_ns: rec.handle.results.iter().map(|(_, w, _)| *w).max().unwrap_or(0),
                    ckpt_bytes: rec.handle.results.iter().map(|(_, _, b)| *b).sum(),
                })
            }),
        }
    }};
}

/// The paper's ten kernels. `quick` shrinks problem sizes for the tier-1
/// smoke (`--seeds 32 --quick` finishes well under a minute); the default
/// sizes match `tests/recovery_kernels.rs`. EP runs on one rank for the
/// same scheduler-dependence reason documented there.
fn kernels(quick: bool) -> Vec<Kernel> {
    if quick {
        vec![
            kernel!("cg", cg, 3, 3, npb::cg::CgConfig { n: 48, iters: 6 }, 6, 150),
            kernel!("lu", lu, 4, 3, npb::lu::LuConfig::class(npb::Class::S), 8, 150),
            kernel!("sp", sp, 3, 3, npb::sp::SpConfig { n: 24, steps: 6, lambda: 0.4 }, 6, 150),
            kernel!(
                "bt",
                bt,
                3,
                1,
                npb::bt::BtConfig { n: 15, steps: 4, lambda: 0.35, kappa: 0.1 },
                4,
                120
            ),
            kernel!("mg", mg, 4, 3, npb::mg::MgConfig { log2_n: 6, cycles: 4, smooth: 2 }, 4, 150),
            kernel!("ft", ft, 4, 3, npb::ft::FtConfig { n: 16, steps: 4, alpha: 1e-4 }, 4, 120),
            kernel!(
                "is",
                is,
                4,
                3,
                npb::is::IsConfig { total_keys: 1024, max_key: 2048, iters: 4 },
                4,
                120
            ),
            kernel!("ep", ep, 1, 3, npb::ep::EpConfig { m_per_block: 10, blocks: 8 }, 8, 60),
            kernel!(
                "smg",
                smg,
                4,
                1,
                npb::smg::SmgConfig { log2_n: 6, iters: 4, smooth: 2 },
                8,
                150
            ),
            kernel!("hpl", hpl, 4, 3, npb::hpl::HplConfig { n: 24 }, 24, 150),
        ]
    } else {
        vec![
            kernel!("cg", cg, 4, 3, npb::cg::CgConfig { n: 96, iters: 8 }, 8, 300),
            kernel!("lu", lu, 4, 3, npb::lu::LuConfig::class(npb::Class::S), 10, 300),
            kernel!("sp", sp, 4, 3, npb::sp::SpConfig { n: 32, steps: 8, lambda: 0.4 }, 8, 300),
            // bt/mg/smg carry real grid state and run long enough for the
            // incremental mode to build full base-plus-delta chains — the
            // configurations the checkpoint-volume comparison in
            // BENCH_recovery.json is made on. bt and smg commit at every
            // pragma (delta = one step/iteration of drift); mg commits every
            // third pragma (delta = one V-cycle of drift). bt's 64 steps let
            // the symmetrically-coupled field contract onto its forcing
            // steady state, where late-chain deltas collapse.
            kernel!(
                "bt",
                bt,
                3,
                1,
                npb::bt::BtConfig { n: 21, steps: 64, lambda: 0.35, kappa: 0.7 },
                12,
                250
            ),
            kernel!(
                "mg",
                mg,
                4,
                3,
                npb::mg::MgConfig { log2_n: 12, cycles: 36, smooth: 2 },
                12,
                300
            ),
            kernel!("ft", ft, 4, 3, npb::ft::FtConfig { n: 32, steps: 6, alpha: 1e-4 }, 6, 250),
            kernel!(
                "is",
                is,
                4,
                3,
                npb::is::IsConfig { total_keys: 2048, max_key: 4096, iters: 6 },
                6,
                250
            ),
            kernel!("ep", ep, 1, 3, npb::ep::EpConfig { m_per_block: 10, blocks: 12 }, 12, 80),
            kernel!(
                "smg",
                smg,
                4,
                1,
                npb::smg::SmgConfig { log2_n: 8, iters: 24, smooth: 2 },
                10,
                300
            ),
            kernel!("hpl", hpl, 4, 3, npb::hpl::HplConfig { n: 40 }, 40, 300),
        ]
    }
}

fn chaos_cfg(store: &TempStore, mode: ModeAxis, every: u64) -> C3Config {
    mode.apply(C3Config {
        store_root: store.path().to_path_buf(),
        write_disk: true,
        // Every rank applies the policy: concurrent initiations exercise
        // the §4.5 "any process may initiate" interleavings under fire.
        policy: CkptPolicy::EveryNth(every),
        initiator: None,
        clock: Clock::Wall,
        ckpt_mode: c3::CkptMode::Full,
        delta_compress: false,
    })
}

/// One sweep record.
struct Record {
    kernel: usize,
    net: NetMode,
    mode: ModeAxis,
    seed: u64,
    plan: ChaosPlan,
    outcome: Result<(RunOutcome, bool), String>, // bool = matches baseline
}

struct Args {
    seeds: u64,
    base_seed: u64,
    quick: bool,
    jobs: usize,
    kernels: Option<Vec<String>>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        base_seed: 0,
        quick: false,
        // Full parallelism by default; `--jobs` overrides in either
        // direction (the old hard cap of 8 silently wasted wider hosts).
        jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        kernels: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--seeds" => args.seeds = grab("--seeds").parse().expect("--seeds N"),
            "--base-seed" => args.base_seed = grab("--base-seed").parse().expect("--base-seed N"),
            "--quick" => args.quick = true,
            "--jobs" => args.jobs = grab("--jobs").parse().expect("--jobs N"),
            "--kernels" => {
                args.kernels = Some(grab("--kernels").split(',').map(str::to_string).collect())
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    args.jobs = args.jobs.max(1);
    args
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Demonstrate the shrinker on a deliberately-seeded known-bad plan: the
/// synthetic oracle "fails" iff the plan holds an op fault at op ≥ 10, so
/// the minimal reproduction is the single fault `rank0@op(10)`. This runs
/// on every invocation — the reduction machinery is exercised even while
/// the protocol itself has no divergences to shrink.
fn shrink_demo() -> (ChaosPlan, ChaosPlan, bool) {
    let bad = ChaosPlan::new(vec![
        FailurePlan { rank: 1, when: FailAt::Pragma(7) },
        FailurePlan { rank: 3, when: FailAt::Op(123) },
        FailurePlan { rank: 2, when: FailAt::DuringRestore { nth_replay: 3 } },
    ])
    .with_net(NetFault {
        drop_permille: 30,
        dup_permille: 20,
        reorder: true,
        mailbox_capacity: None,
    });
    let oracle =
        |p: &ChaosPlan| p.faults.iter().any(|f| matches!(f.when, FailAt::Op(n) if n >= 10));
    let min = shrink_plan(&bad, oracle);
    let ok = min == ChaosPlan::single(FailurePlan { rank: 0, when: FailAt::Op(10) });
    (bad, min, ok)
}

fn main() {
    let args = parse_args();
    let mut kset = kernels(args.quick);
    if let Some(filter) = &args.kernels {
        kset.retain(|k| filter.iter().any(|f| f == k.name));
        if kset.is_empty() {
            eprintln!("--kernels matched nothing");
            std::process::exit(2);
        }
    }

    // Failure-free baselines, once per kernel.
    let baselines: Vec<Vec<u64>> =
        kset.iter().map(|k| (k.baseline)(&JobSpec::new(k.nranks))).collect();

    // The sweep: kernels × network modes × checkpoint modes × seeds,
    // claimed by a fixed-size worker pool.
    let tasks: Vec<(usize, NetMode, ModeAxis, u64)> = (0..kset.len())
        .flat_map(|k| {
            NetMode::ALL.into_iter().flat_map(move |net| {
                ModeAxis::ALL.into_iter().flat_map(move |mode| {
                    (0..args.seeds).map(move |s| (k, net, mode, args.base_seed + s))
                })
            })
        })
        .collect();
    let next = AtomicUsize::new(0);
    let records: Mutex<Vec<Record>> = Mutex::new(Vec::with_capacity(tasks.len()));
    std::thread::scope(|scope| {
        for _ in 0..args.jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(kidx, net, mode, seed)) = tasks.get(i) else { break };
                let k = &kset[kidx];
                let plan = ChaosPlan::from_seed(seed, &k.space);
                let store = TempStore::new(k.name);
                let job = Job::new(k.nranks, chaos_cfg(&store, mode, k.every))
                    .network(net.model(seed, k.nranks));
                let outcome = (k.chaos)(&job, &plan).map(|run| {
                    let ok = run.bits == baselines[kidx];
                    (run, ok)
                });
                records.lock().unwrap().push(Record {
                    kernel: kidx,
                    net,
                    mode,
                    seed,
                    plan,
                    outcome,
                });
            });
        }
    });
    // Workers finish in scheduler order; sort so the report, the failing
    // list, and BENCH_recovery.json are byte-stable across identical runs.
    let mut records = records.into_inner().unwrap();
    records.sort_by_key(|r| (r.kernel, r.net as u8, r.mode as u8, r.seed));

    // Aggregate per (kernel, network mode, checkpoint mode).
    let mut table = Table::new(
        format!(
            "chaos_soak — {} seeds × {} kernels × {} networks × {} ckpt modes ({} plans)",
            args.seeds,
            kset.len(),
            NetMode::ALL.len(),
            ModeAxis::ALL.len(),
            records.len()
        ),
        &[
            ("kernel", Align::Left),
            ("network", Align::Left),
            ("ckpt", Align::Left),
            ("runs", Align::Right),
            ("diverged", Align::Right),
            ("errors", Align::Right),
            ("faults fired", Align::Right),
            ("max restarts", Align::Right),
            ("restart-cost p50/p99 ms", Align::Right),
            ("ckpt p50 KB", Align::Right),
        ],
    );
    let mut json_kernels = Vec::new();
    let mut total_diverged = 0usize;
    let mut failing: Vec<&Record> = Vec::new();
    for (kidx, k) in kset.iter().enumerate() {
        for net in NetMode::ALL {
            for mode in ModeAxis::ALL {
                let mine: Vec<&Record> = records
                    .iter()
                    .filter(|r| r.kernel == kidx && r.net == net && r.mode == mode)
                    .collect();
                let mut diverged = 0usize;
                let mut errors = 0usize;
                let mut fired = 0u64;
                let mut max_restarts = 0u32;
                let mut hist: Vec<u64> = Vec::new();
                let mut costs: Vec<u64> = Vec::new();
                let mut volumes: Vec<u64> = Vec::new();
                for r in &mine {
                    match &r.outcome {
                        Ok((run, ok)) => {
                            if !ok {
                                diverged += 1;
                                failing.push(r);
                            }
                            fired += run.fired as u64;
                            max_restarts = max_restarts.max(run.restarts);
                            let slot = run.restarts as usize;
                            if hist.len() <= slot {
                                hist.resize(slot + 1, 0);
                            }
                            hist[slot] += 1;
                            if run.wall_ns > 0 {
                                costs.push(run.wall_ns);
                            }
                            volumes.push(run.ckpt_bytes);
                        }
                        Err(_) => {
                            errors += 1;
                            failing.push(r);
                        }
                    }
                }
                total_diverged += diverged + errors;
                costs.sort_unstable();
                volumes.sort_unstable();
                let (p50, p90, p99) =
                    (percentile(&costs, 0.50), percentile(&costs, 0.90), percentile(&costs, 0.99));
                let (b50, b90, b99) = (
                    percentile(&volumes, 0.50),
                    percentile(&volumes, 0.90),
                    percentile(&volumes, 0.99),
                );
                table.row(vec![
                    k.name.to_string(),
                    net.name().to_string(),
                    mode.name().to_string(),
                    mine.len().to_string(),
                    diverged.to_string(),
                    errors.to_string(),
                    fired.to_string(),
                    max_restarts.to_string(),
                    format!("{:.2}/{:.2}", p50 as f64 / 1e6, p99 as f64 / 1e6),
                    format!("{:.1}", b50 as f64 / 1024.0),
                ]);
                let hist_json = hist.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
                json_kernels.push(format!(
                    "    {{\"name\": \"{}\", \"network\": \"{}\", \"ckpt_mode\": \"{}\", \
                     \"runs\": {}, \"divergences\": {}, \
                     \"errors\": {}, \"faults_fired\": {}, \"max_restarts\": {}, \
                     \"restart_histogram\": [{}], \
                     \"restart_cost_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, \
                     \"ckpt_bytes\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}}}",
                    k.name,
                    net.name(),
                    mode.name(),
                    mine.len(),
                    diverged,
                    errors,
                    fired,
                    max_restarts,
                    hist_json,
                    p50,
                    p90,
                    p99,
                    costs.last().copied().unwrap_or(0),
                    b50,
                    b90,
                    b99,
                    volumes.last().copied().unwrap_or(0),
                ));
            }
        }
    }
    table.print();

    // Shrink every failing seed to a minimal reproduction by re-running
    // (over the network-fault component too).
    let mut shrunk_json = Vec::new();
    for r in &failing {
        let k = &kset[r.kernel];
        let still_fails = |cand: &ChaosPlan| {
            let store = TempStore::new("shrink");
            let job = Job::new(k.nranks, chaos_cfg(&store, r.mode, k.every))
                .network(r.net.model(r.seed, k.nranks));
            match (k.chaos)(&job, cand) {
                Ok(run) => run.bits != baselines[r.kernel],
                Err(_) => true,
            }
        };
        let min = shrink_plan(&r.plan, still_fails);
        let why = match &r.outcome {
            Ok(_) => "diverged from baseline".to_string(),
            Err(e) => format!("error: {e}"),
        };
        println!(
            "FAIL {} [{}/{}] seed {}: plan {} shrank to minimal reproduction {} ({why})",
            k.name,
            r.net.name(),
            r.mode.name(),
            r.seed,
            r.plan,
            min
        );
        shrunk_json.push(format!(
            "    {{\"kernel\": \"{}\", \"network\": \"{}\", \"ckpt_mode\": \"{}\", \"seed\": {}, \
             \"plan\": \"{}\", \"shrunk\": \"{}\"}}",
            k.name,
            r.net.name(),
            r.mode.name(),
            r.seed,
            r.plan,
            min
        ));
    }

    // The standing shrinker demonstration.
    let (demo_bad, demo_min, demo_ok) = shrink_demo();
    println!(
        "\nshrinker demo: {} → {} ({})",
        demo_bad,
        demo_min,
        if demo_ok { "minimal, as expected" } else { "UNEXPECTED RESULT" }
    );

    let json = format!(
        "{{\n  \"bench\": \"chaos_soak\",\n  \"seeds\": {},\n  \"base_seed\": {},\n  \
         \"quick\": {},\n  \"divergences\": {},\n  \"kernels\": [\n{}\n  ],\n  \
         \"failing_shrunk\": [\n{}\n  ],\n  \"shrink_demo\": {{\"original\": \"{}\", \
         \"shrunk\": \"{}\", \"minimal\": {}}}\n}}\n",
        args.seeds,
        args.base_seed,
        args.quick,
        total_diverged,
        json_kernels.join(",\n"),
        shrunk_json.join(",\n"),
        demo_bad,
        demo_min,
        demo_ok,
    );
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create BENCH_OUT_DIR {dir}: {e}");
        std::process::exit(1);
    }
    let path = std::path::Path::new(&dir).join("BENCH_recovery.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());

    if total_diverged > 0 || !demo_ok {
        std::process::exit(1);
    }
}
