//! Shared integration-test support.
//!
//! The one thing every protocol test needs is a checkpoint-store directory
//! that is unique per test *and reliably removed afterwards* — the seed's
//! bare `tmp_store()` helpers leaked a directory per test run on success.
//! The RAII guard itself lives in `statesave` ([`statesave::TempStore`]) so
//! the bench harnesses (`chaos_soak`) share the exact same semantics:
//! removed on clean drop, kept with its path printed when the test is
//! panicking so the on-disk checkpoint state can be inspected.

pub use statesave::TempStore;
