//! End-to-end protocol tests: checkpoint, fail, recover, and verify that
//! the recovered execution produces exactly the failure-free result.
//!
//! The scenarios force each message class deterministically:
//! * rank 0 checkpoints *before* its send/recv of an iteration, rank 1
//!   *after* — so rank 1's sends at the checkpoint iteration are **late**
//!   (logged, replayed) and rank 0's are **early** (recorded, suppressed).

use c3::{C3Config, C3Ctx, C3Error, FailAt, FailurePlan, Job};
use mpisim::{NetModel, ANY_SOURCE, ANY_TAG};
use statesave::codec::{Decoder, Encoder};
use statesave::TempStore;

/// RAII store root: the checkpoint directory is removed when the guard
/// drops, so green runs leave nothing behind in the system tmpdir. Bind the
/// guard for the duration of the job(s) that use the store.
fn tmp_store(name: &str) -> TempStore {
    TempStore::new(&format!("e2e-{name}"))
}

#[derive(Default)]
struct LoopState {
    iter: u64,
    checksum: u64,
}

impl LoopState {
    fn restore_or_new(ctx: &mut C3Ctx<'_>) -> Result<Self, C3Error> {
        match ctx.take_restored_state() {
            Some(b) => {
                let mut d = Decoder::new(&b);
                Ok(LoopState { iter: d.u64()?, checksum: d.u64()? })
            }
            None => Ok(LoopState::default()),
        }
    }
    fn save(&self, e: &mut Encoder) {
        e.u64(self.iter);
        e.u64(self.checksum);
    }
    fn absorb(&mut self, v: u64) {
        self.checksum = self.checksum.wrapping_mul(0x100000001b3).wrapping_add(v);
    }
}

/// Ring: every rank sends to its successor and receives from its
/// predecessor each iteration, checkpointing at the loop top.
fn ring_app(ctx: &mut C3Ctx<'_>, iters: u64) -> Result<u64, C3Error> {
    let mut st = LoopState::restore_or_new(ctx)?;
    let me = ctx.rank();
    let n = ctx.nranks();
    while st.iter < iters {
        ctx.pragma(|e| st.save(e))?;
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        ctx.send(next, 1, &[st.iter * 1000 + me as u64])?;
        let (v, _) = ctx.recv::<u64>(prev as i32, 1)?;
        st.absorb(v[0]);
        st.iter += 1;
        ctx.pragma(|e| st.save(e))?;
    }
    Ok(st.checksum)
}

/// The deterministic cross-line app: rank 1 sends its data message (tag 9)
/// *and then* a sync message (tag 8) each iteration; rank 0 receives the
/// sync **before** its pragma. At the checkpoint iteration this pins both
/// message classes causally, under every rank scheduler:
///
/// * the data message was sent before the sync, hence before rank 0's
///   initiating pragma even existed — it provably carries the old epoch —
///   yet rank 0 receives it after advancing: **late** (logged, replayed);
/// * rank 0's reply (tag 7, new epoch) reaches rank 1 before rank 1's next
///   pragma (rank 1's previous pragma happens-before its sync send,
///   happens-before the initiation): **early** (recorded, suppressed).
///
/// Rank 0's pragma sits mid-iteration (after the sync receive), so its
/// saved state carries an explicit `phase` marking the resume point — the
/// application-level contract that anything consumed before the line is
/// folded into the line.
fn cross_app(ctx: &mut C3Ctx<'_>, iters: u64) -> Result<u64, C3Error> {
    let me = ctx.rank();
    if me != 0 {
        let mut st = LoopState::restore_or_new(ctx)?;
        while st.iter < iters {
            ctx.send(0, 9, &[st.iter * 10 + 1])?;
            ctx.send(0, 8, &[st.iter * 10 + 2])?;
            let (v, _) = ctx.recv::<u64>(0, 7)?;
            st.absorb(v[0]);
            // State must describe the resume point: this iteration is done.
            st.iter += 1;
            ctx.pragma(|e| st.save(e))?;
        }
        return Ok(st.checksum);
    }
    let (mut st, mut phase) = match ctx.take_restored_state() {
        Some(b) => {
            let mut d = Decoder::new(&b);
            (LoopState { iter: d.u64()?, checksum: d.u64()? }, d.u64()?)
        }
        None => (LoopState::default(), 0),
    };
    while st.iter < iters {
        if phase == 0 {
            let (s, _) = ctx.recv::<u64>(1, 8)?;
            st.absorb(s[0]);
            phase = 1;
        }
        ctx.pragma(|e| {
            st.save(e);
            e.u64(phase);
        })?;
        let (v, _) = ctx.recv::<u64>(1, 9)?;
        st.absorb(v[0]);
        ctx.send(1, 7, &[st.iter * 10])?;
        st.iter += 1;
        phase = 0;
    }
    Ok(st.checksum)
}

#[test]
fn ring_no_checkpoints_matches_plain() {
    let st_ring_plain_1 = tmp_store("ring-plain");
    let cfg = C3Config::passive(st_ring_plain_1.path());
    let out = Job::new(4, cfg).run(|ctx| ring_app(ctx, 10)).unwrap();
    // Compare against the same app with checkpoints taken: results equal.
    let st_ring_ckpt_2 = tmp_store("ring-ckpt");
    let cfg2 = C3Config::at_pragmas(st_ring_ckpt_2.path(), vec![7]);
    let out2 = Job::new(4, cfg2).run(|ctx| ring_app(ctx, 10)).unwrap();
    assert_eq!(out.results, out2.results);
}

#[test]
fn ring_survives_failure_after_commit() {
    let st_ring_base_3 = tmp_store("ring-base");
    let baseline =
        Job::new(4, C3Config::passive(st_ring_base_3.path())).run(|ctx| ring_app(ctx, 12)).unwrap();

    let st_ring_fail_4 = tmp_store("ring-fail");
    let cfg = C3Config::at_pragmas(st_ring_fail_4.path(), vec![9]);
    let plan = FailurePlan { rank: 2, when: FailAt::AfterCommits { commits: 1, pragma: 15 } };
    let rec = Job::new(4, cfg).failure(plan).run(|ctx| ring_app(ctx, 12)).unwrap();
    assert_eq!(rec.restarts, 1);
    assert_eq!(rec.handle.results, baseline.results);
}

#[test]
fn ring_failure_before_any_commit_restarts_from_scratch() {
    let st_ring_base2_5 = tmp_store("ring-base2");
    let baseline =
        Job::new(3, C3Config::passive(st_ring_base2_5.path())).run(|ctx| ring_app(ctx, 6)).unwrap();
    // Never checkpoint; fail mid-run: recovery = full restart.
    let st_ring_nockpt_6 = tmp_store("ring-nockpt");
    let cfg = C3Config::passive(st_ring_nockpt_6.path());
    let plan = FailurePlan { rank: 0, when: FailAt::Pragma(5) };
    let rec = Job::new(3, cfg).failure(plan).run(|ctx| ring_app(ctx, 6)).unwrap();
    assert_eq!(rec.restarts, 1);
    assert_eq!(rec.handle.results, baseline.results);
}

#[test]
fn cross_line_late_and_early_messages_replayed() {
    let st_cross_base_7 = tmp_store("cross-base");
    let baseline = Job::new(2, C3Config::passive(st_cross_base_7.path()))
        .run(|ctx| cross_app(ctx, 8))
        .unwrap();

    // Checkpoint at rank 0's third pragma. Rank 1's in-flight send becomes
    // late; rank 0's post-checkpoint send becomes early at rank 1.
    let st_cross_fail_8 = tmp_store("cross-fail");
    let cfg = C3Config::at_pragmas(st_cross_fail_8.path(), vec![3]);
    let plan = FailurePlan { rank: 1, when: FailAt::AfterCommits { commits: 1, pragma: 5 } };
    let rec = Job::new(2, cfg).failure(plan).run(|ctx| cross_app(ctx, 8)).unwrap();
    assert_eq!(rec.restarts, 1);
    assert_eq!(rec.handle.results, baseline.results);
}

#[test]
fn cross_line_stats_show_late_and_early() {
    // Verify the protocol actually classified messages as late and early in
    // the cross app (not that it merely survived).
    let st_cross_stats_9 = tmp_store("cross-stats");
    let cfg = C3Config::at_pragmas(st_cross_stats_9.path(), vec![3]);
    let out = Job::new(2, cfg)
        .run(|ctx| {
            let r = cross_app(ctx, 8)?;
            Ok((r, ctx.stats().late_logged, ctx.stats().early_recorded))
        })
        .unwrap();
    let total_late: u64 = out.results.iter().map(|(_, l, _)| *l).sum();
    let total_early: u64 = out.results.iter().map(|(_, _, e)| *e).sum();
    assert!(total_late >= 1, "expected at least one late message, got {total_late}");
    assert!(total_early >= 1, "expected at least one early message, got {total_early}");
}

/// Wild-card receives with nondeterministic arrival order: the logged
/// signatures must force the same order on recovery.
fn wildcard_app(ctx: &mut C3Ctx<'_>, iters: u64) -> Result<u64, C3Error> {
    let mut st = LoopState::restore_or_new(ctx)?;
    let me = ctx.rank();
    let n = ctx.nranks();
    while st.iter < iters {
        if me == 0 {
            ctx.pragma(|e| st.save(e))?;
            // Collect one message from every worker in arrival order.
            for _ in 1..n {
                let (v, st_) = ctx.recv::<u64>(ANY_SOURCE, ANY_TAG)?;
                st.absorb(v[0].wrapping_mul(st_.src as u64 + 1));
            }
            // Send each worker an order-dependent reply.
            for q in 1..n {
                ctx.send(q, 5, &[st.checksum])?;
            }
            st.iter += 1;
        } else {
            ctx.send(0, me as i32, &[st.iter * 100 + me as u64])?;
            let (v, _) = ctx.recv::<u64>(0, 5)?;
            st.absorb(v[0]);
            st.iter += 1;
            ctx.pragma(|e| st.save(e))?;
        }
    }
    Ok(st.checksum)
}

#[test]
fn wildcard_order_replayed_after_failure() {
    // No baseline comparison possible (wild-card order is nondeterministic);
    // instead verify global consistency: every worker's checksum folds the
    // coordinator's order-dependent replies, and after recovery all ranks
    // agree with what the coordinator's committed state implies. We check
    // self-consistency by running the recovered job and verifying that all
    // worker checksums match a recomputation from rank 0's result trace.
    let st_wild_10 = tmp_store("wild");
    let cfg = C3Config::at_pragmas(st_wild_10.path(), vec![4]);
    let plan = FailurePlan { rank: 3, when: FailAt::AfterCommits { commits: 1, pragma: 6 } };
    let rec = Job::new(4, cfg).failure(plan).run(|ctx| wildcard_app(ctx, 8)).unwrap();
    assert_eq!(rec.restarts, 1);
    // Deterministic invariant: re-running the *whole* recovered job again
    // from its final checkpoints must be impossible to distinguish — here we
    // assert the job completed and every rank produced a nonzero checksum.
    for (i, c) in rec.handle.results.iter().enumerate() {
        assert!(*c != 0, "rank {i} produced empty checksum");
    }
}

/// Non-blocking requests crossing the recovery line. The pending request id
/// is part of the saved application state (the paper's precompiler restores
/// the request variable the same way; §4.1 keeps ids stable for exactly
/// this reason).
fn nonblocking_app(ctx: &mut C3Ctx<'_>, iters: u64) -> Result<u64, C3Error> {
    let (mut st, mut pending): (LoopState, Option<c3::requests::C3Req>) =
        match ctx.take_restored_state() {
            Some(b) => {
                let mut d = Decoder::new(&b);
                let st = LoopState { iter: d.u64()?, checksum: d.u64()? };
                let pending: Option<u64> = d.load()?;
                (st, pending.map(c3::requests::C3Req))
            }
            None => (LoopState::default(), None),
        };
    let me = ctx.rank();
    let n = ctx.nranks();
    while st.iter < iters {
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        // Post the receive for this iteration before checkpointing, so the
        // request crosses the recovery line (skipped when restored: the
        // request is already in the restored table).
        let r = match pending.take() {
            Some(r) => r,
            None => ctx.irecv(prev as i32, 3)?,
        };
        {
            let save_iter = st.iter;
            let save_ck = st.checksum;
            ctx.pragma(|e| {
                e.u64(save_iter);
                e.u64(save_ck);
                e.save(&Some(r.0));
            })?;
        }
        ctx.send(next, 3, &[st.iter * 7 + me as u64])?;
        // Spin on test a few times (exercises the test counter), then wait.
        let mut done = None;
        for _ in 0..3 {
            if let Some(x) = ctx.test(r)? {
                done = Some(x);
                break;
            }
        }
        let (_, data) = match done {
            Some((s, d)) => (s, d),
            None => ctx.wait(r)?,
        };
        let v = u64::from_le_bytes(data[..8].try_into().unwrap());
        st.absorb(v);
        st.iter += 1;
    }
    Ok(st.checksum)
}

#[test]
fn nonblocking_requests_survive_failure() {
    let st_nb_base_11 = tmp_store("nb-base");
    let baseline = Job::new(3, C3Config::passive(st_nb_base_11.path()))
        .run(|ctx| nonblocking_app(ctx, 10))
        .unwrap();
    let st_nb_fail_12 = tmp_store("nb-fail");
    let cfg = C3Config::at_pragmas(st_nb_fail_12.path(), vec![5]);
    let plan = FailurePlan { rank: 1, when: FailAt::AfterCommits { commits: 1, pragma: 8 } };
    let rec = Job::new(3, cfg).failure(plan).run(|ctx| nonblocking_app(ctx, 10)).unwrap();
    assert_eq!(rec.restarts, 1);
    assert_eq!(rec.handle.results, baseline.results);
}

/// Collectives crossing the recovery line: allreduce + bcast + gather.
fn collective_app(ctx: &mut C3Ctx<'_>, iters: u64) -> Result<u64, C3Error> {
    let mut st = LoopState::restore_or_new(ctx)?;
    let me = ctx.rank();
    while st.iter < iters {
        if me == 0 {
            ctx.pragma(|e| st.save(e))?;
        }
        let sum = ctx.allreduce_u64(st.iter * 3 + me as u64, &mpisim::ReduceOp::Sum)?;
        st.absorb(sum);
        let mut blob = if me == 1 { (st.iter * 11).to_le_bytes().to_vec() } else { Vec::new() };
        ctx.bcast(1, &mut blob)?;
        st.absorb(u64::from_le_bytes(blob[..8].try_into().unwrap()));
        if let Some(parts) = ctx.gather(0, &[(me as u8) + 1])? {
            for p in parts {
                st.absorb(p[0] as u64);
            }
        }
        st.iter += 1;
        if me != 0 {
            ctx.pragma(|e| st.save(e))?;
        }
    }
    Ok(st.checksum)
}

#[test]
fn collectives_survive_failure_across_line() {
    let st_coll_base_13 = tmp_store("coll-base");
    let baseline = Job::new(4, C3Config::passive(st_coll_base_13.path()))
        .run(|ctx| collective_app(ctx, 8))
        .unwrap();
    let st_coll_fail_14 = tmp_store("coll-fail");
    let cfg = C3Config::at_pragmas(st_coll_fail_14.path(), vec![4]);
    let plan = FailurePlan { rank: 2, when: FailAt::AfterCommits { commits: 1, pragma: 6 } };
    let rec = Job::new(4, cfg).failure(plan).run(|ctx| collective_app(ctx, 8)).unwrap();
    assert_eq!(rec.restarts, 1);
    assert_eq!(rec.handle.results, baseline.results);
}

#[test]
fn reduce_and_scan_survive_failure() {
    let app = |ctx: &mut C3Ctx<'_>| -> Result<u64, C3Error> {
        let mut st = LoopState::restore_or_new(ctx)?;
        let me = ctx.rank();
        while st.iter < 6 {
            ctx.pragma(|e| st.save(e))?;
            let x = (st.iter + 1) * (me as u64 + 1);
            if let Some(r) =
                ctx.reduce(0, &x.to_le_bytes(), mpisim::BasicType::U64, &mpisim::ReduceOp::Sum)?
            {
                st.absorb(u64::from_le_bytes(r[..8].try_into().unwrap()));
            }
            let s = ctx.scan(&x.to_le_bytes(), mpisim::BasicType::U64, &mpisim::ReduceOp::Sum)?;
            st.absorb(u64::from_le_bytes(s[..8].try_into().unwrap()));
            st.iter += 1;
        }
        Ok(st.checksum)
    };
    let st_rs_base_15 = tmp_store("rs-base");
    let baseline = Job::new(3, C3Config::passive(st_rs_base_15.path())).run(app).unwrap();
    let st_rs_fail_16 = tmp_store("rs-fail");
    let cfg = C3Config::at_pragmas(st_rs_fail_16.path(), vec![3]);
    let plan = FailurePlan { rank: 1, when: FailAt::AfterCommits { commits: 1, pragma: 5 } };
    let rec = Job::new(3, cfg).failure(plan).run(app).unwrap();
    assert_eq!(rec.restarts, 1);
    assert_eq!(rec.handle.results, baseline.results);
}

#[test]
fn heap_and_vars_restored() {
    let st_heapvars_17 = tmp_store("heapvars");
    let cfg = C3Config::at_pragmas(st_heapvars_17.path(), vec![2]);
    let plan = FailurePlan { rank: 0, when: FailAt::AfterCommits { commits: 1, pragma: 4 } };
    let rec = Job::new(2, cfg)
        .failure(plan)
        .run(|ctx| {
            let mut st = LoopState::restore_or_new(ctx)?;
            // Heap object created once at the start, mutated every iteration.
            let obj = if st.iter == 0 && ctx.heap.live_objects() == 0 {
                ctx.heap.alloc_init(vec![0u8; 8])
            } else {
                statesave::ObjId(0)
            };
            let me = ctx.rank();
            while st.iter < 6 {
                ctx.pragma(|e| st.save(e))?;
                let cur = u64::from_le_bytes(ctx.heap.get(obj).unwrap().try_into().unwrap());
                let next = cur.wrapping_add(st.iter + me as u64 + 1);
                ctx.heap.get_mut(obj).unwrap().copy_from_slice(&next.to_le_bytes());
                ctx.vars.register("iter", statesave::TypeCode::I64, st.iter.to_le_bytes().to_vec());
                let other = ctx.allreduce_u64(next, &mpisim::ReduceOp::Sum)?;
                st.absorb(other);
                st.iter += 1;
            }
            let final_heap = u64::from_le_bytes(ctx.heap.get(obj).unwrap().try_into().unwrap());
            Ok((st.checksum, final_heap))
        })
        .unwrap();
    assert_eq!(rec.restarts, 1);
    // Both ranks agree, and the heap evolved deterministically: sum over
    // iters of (iter + me + 1).
    let expected0: u64 = (0..6).map(|i| i + 1).sum();
    let expected1: u64 = (0..6).map(|i| i + 2).sum();
    assert_eq!(rec.handle.results[0].1, expected0);
    assert_eq!(rec.handle.results[1].1, expected1);
    assert_eq!(rec.handle.results[0].0, rec.handle.results[1].0);
}

#[test]
fn two_checkpoints_recover_from_latest() {
    let st_two_base_18 = tmp_store("two-base");
    let baseline =
        Job::new(3, C3Config::passive(st_two_base_18.path())).run(|ctx| ring_app(ctx, 14)).unwrap();
    let st_two_fail_19 = tmp_store("two-fail");
    let cfg = C3Config::at_pragmas(st_two_fail_19.path(), vec![5, 15]);
    let plan = FailurePlan { rank: 1, when: FailAt::AfterCommits { commits: 2, pragma: 20 } };
    let rec = Job::new(3, cfg).failure(plan).run(|ctx| ring_app(ctx, 14)).unwrap();
    assert_eq!(rec.restarts, 1);
    assert_eq!(rec.handle.results, baseline.results);
}

#[test]
fn reordered_network_still_recovers() {
    let net = NetModel::reorder(1234);
    let st_re_base_20 = tmp_store("re-base");
    let baseline = Job::new(3, C3Config::passive(st_re_base_20.path()))
        .network(net)
        .run(|ctx| cross_ringish(ctx, 10))
        .unwrap();
    let st_re_fail_21 = tmp_store("re-fail");
    let cfg = C3Config::at_pragmas(st_re_fail_21.path(), vec![6]);
    let plan = FailurePlan { rank: 2, when: FailAt::AfterCommits { commits: 1, pragma: 9 } };
    let rec =
        Job::new(3, cfg).network(net).failure(plan).run(|ctx| cross_ringish(ctx, 10)).unwrap();
    assert!(rec.restarts >= 1);
    assert_eq!(rec.handle.results, baseline.results);
}

/// A two-signature exchange (different tags per direction) so the reorder
/// model can actually reorder across signatures.
fn cross_ringish(ctx: &mut C3Ctx<'_>, iters: u64) -> Result<u64, C3Error> {
    let mut st = LoopState::restore_or_new(ctx)?;
    let me = ctx.rank();
    let n = ctx.nranks();
    while st.iter < iters {
        ctx.pragma(|e| st.save(e))?;
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        ctx.send(next, 10, &[st.iter + me as u64])?;
        ctx.send(next, 11, &[st.iter * 2 + me as u64])?;
        let (a, _) = ctx.recv::<u64>(prev as i32, 10)?;
        let (b, _) = ctx.recv::<u64>(prev as i32, 11)?;
        st.absorb(a[0] ^ b[0].rotate_left(17));
        st.iter += 1;
    }
    Ok(st.checksum)
}

/// The timer initiation policy (the paper's "timer expired" pragma trigger):
/// with a zero timer every pragma wants a checkpoint, so multiple rounds
/// accumulate; with a long timer none fire.
#[test]
fn timer_policy_triggers_and_idles() {
    use c3::{CkptPolicy, Clock};
    use std::time::Duration;

    // Long timer: no checkpoint ever starts.
    let st_timer_idle_22 = tmp_store("timer-idle");
    let cfg_idle = C3Config {
        store_root: st_timer_idle_22.path().to_path_buf(),
        write_disk: true,
        policy: CkptPolicy::Timer(Duration::from_secs(3600)),
        initiator: Some(0),
        clock: Clock::Wall,
        ckpt_mode: c3::CkptMode::Full,
        delta_compress: false,
    };
    let out = Job::new(2, cfg_idle)
        .run(|ctx| {
            ring_app(ctx, 6)?;
            Ok(ctx.commits())
        })
        .unwrap();
    assert_eq!(out.results, vec![0, 0]);

    // Zero timer: rank 0 initiates at its first eligible pragma, and again
    // once the round commits; at least one round must complete.
    let st_timer_hot_23 = tmp_store("timer-hot");
    let cfg_hot = C3Config {
        store_root: st_timer_hot_23.path().to_path_buf(),
        write_disk: true,
        policy: CkptPolicy::Timer(Duration::ZERO),
        initiator: Some(0),
        clock: Clock::Wall,
        ckpt_mode: c3::CkptMode::Full,
        delta_compress: false,
    };
    let st_timer_base_24 = tmp_store("timer-base");
    let baseline = Job::new(2, C3Config::passive(st_timer_base_24.path()))
        .run(|ctx| ring_app(ctx, 6))
        .unwrap();
    let out = Job::new(2, cfg_hot)
        .run(|ctx| {
            let r = ring_app(ctx, 6)?;
            Ok((r, ctx.commits()))
        })
        .unwrap();
    assert!(out.results[0].1 >= 1, "no checkpoint committed under a zero timer");
    assert_eq!(
        out.results.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        baseline.results,
        "checkpointing changed the computation"
    );
}

/// The virtual-time timer policy (ROADMAP "timer-policy chaos"): with
/// `Clock::Virtual` the timer reads the substrate's virtual compute clock,
/// a pure function of the call sequence — so timer-initiated rounds are
/// bit-for-bit reproducible. The app is a fully serialized token ring (one
/// token circulating means every send/receive/pragma is totally ordered),
/// so even the Checkpoint-Initiated arrival points are deterministic and
/// the whole commit trace — counts *and* virtual commit stamps — must be
/// identical across runs.
#[test]
fn virtual_time_timer_trace_is_bit_for_bit_reproducible() {
    use c3::{CkptPolicy, Clock};
    use std::time::Duration;

    fn token_app(ctx: &mut C3Ctx<'_>, rounds: u64) -> Result<(u64, u64, u64), C3Error> {
        let mut st = LoopState::restore_or_new(ctx)?;
        let me = ctx.rank();
        let n = ctx.nranks();
        while st.iter < rounds {
            if !(st.iter == 0 && me == 0) {
                // Wait for the token (rank 0 injects it on round 0).
                let (v, _) = ctx.recv::<u64>(((me + n - 1) % n) as i32, 4)?;
                st.absorb(v[0]);
            }
            ctx.pragma(|e| st.save(e))?;
            ctx.compute(200_000); // 200µs of virtual work per hold
            st.iter += 1;
            if !(st.iter == rounds && me == n - 1) {
                ctx.send((me + 1) % n, 4, &[st.checksum ^ st.iter])?;
            }
        }
        Ok((st.checksum, ctx.commits(), ctx.stats().last_commit_wall_ns))
    }

    let run = |tag: &str| {
        let st_tag_25 = tmp_store(tag);
        let cfg = C3Config {
            store_root: st_tag_25.path().to_path_buf(),
            write_disk: true,
            policy: CkptPolicy::Timer(Duration::from_millis(1)),
            initiator: Some(0),
            clock: Clock::Virtual,
            ckpt_mode: c3::CkptMode::Full,
            delta_compress: false,
        };
        Job::new(3, cfg).clock(Clock::Virtual).run(|ctx| token_app(ctx, 24)).unwrap()
    };
    let a = run("vtimer-a");
    let b = run("vtimer-b");
    assert_eq!(a.results, b.results, "virtual-time timer trace diverged across identical runs");
    assert!(a.results[0].1 >= 2, "1ms virtual timer fired fewer than 2 rounds over 24 holds");
    assert!(
        a.results.iter().all(|(_, commits, ns)| *commits == 0 || *ns > 0),
        "committed ranks must carry a virtual commit stamp"
    );
    // The virtual stamp is virtual time, not wall time: far below the
    // nanoseconds this test takes on a real clock, and an exact function
    // of the per-rank op sequence.
    assert!(a.results.iter().all(|(_, _, ns)| *ns < 50_000_000), "stamps look like wall time");
}

/// Strong wildcard-replay consistency: a coordinator matches worker
/// messages with ANY_SOURCE and *echoes back* the order it observed; each
/// worker folds the echoes. On recovery the coordinator's wildcard matches
/// are forced to the original order (the replay log's signatures), so the
/// echoes — and therefore every worker's checksum — must be consistent with
/// the coordinator's committed trace. The final cross-check recomputes every
/// worker's expected checksum from the coordinator's trace inside the job.
#[test]
fn wildcard_order_echo_is_globally_consistent() {
    fn app(ctx: &mut C3Ctx<'_>) -> Result<u64, C3Error> {
        let me = ctx.rank();
        let n = ctx.nranks();
        let iters = 8u64;
        if me == 0 {
            // Coordinator: state = iteration + the full match-order trace.
            let (mut iter, mut trace): (u64, Vec<u64>) = match ctx.take_restored_state() {
                Some(b) => {
                    let mut d = Decoder::new(&b);
                    (d.u64()?, d.u64_vec()?)
                }
                None => (0, Vec::new()),
            };
            while iter < iters {
                ctx.pragma(|e| {
                    e.u64(iter);
                    e.u64_slice(&trace);
                })?;
                // One wildcard match per worker per iteration; echo the
                // observed source to *every* worker.
                for _ in 1..n {
                    let (_, st) = ctx.recv::<u64>(ANY_SOURCE, 21)?;
                    trace.push(st.src as u64);
                    for w in 1..n {
                        ctx.send(w, 22, &[st.src as u64])?;
                    }
                }
                iter += 1;
            }
            // Collect worker checksums and verify them against the trace.
            let mut expected = vec![0u64; n];
            for &src in &trace {
                for e in expected.iter_mut().skip(1) {
                    *e = e.wrapping_mul(0x100000001b3).wrapping_add(src);
                }
            }
            if let Some(parts) = ctx.gather(0, &[])? {
                for (w, part) in parts.iter().enumerate().skip(1) {
                    let got = u64::from_le_bytes(part[..8].try_into().unwrap());
                    assert_eq!(
                        got, expected[w],
                        "worker {w} checksum inconsistent with the coordinator's trace"
                    );
                }
            }
            Ok(trace.iter().sum())
        } else {
            let (mut iter, mut acc): (u64, u64) = match ctx.take_restored_state() {
                Some(b) => {
                    let mut d = Decoder::new(&b);
                    (d.u64()?, d.u64()?)
                }
                None => (0, 0),
            };
            while iter < iters {
                ctx.pragma(|e| {
                    e.u64(iter);
                    e.u64(acc);
                })?;
                ctx.send(0, 21, &[iter * 13 + me as u64])?;
                for _ in 1..n {
                    let (v, _) = ctx.recv::<u64>(0, 22)?;
                    acc = acc.wrapping_mul(0x100000001b3).wrapping_add(v[0]);
                }
                iter += 1;
            }
            ctx.gather(0, &acc.to_le_bytes())?;
            Ok(acc)
        }
    }

    let st_wild_echo_26 = tmp_store("wild-echo");
    let cfg = C3Config::at_pragmas(st_wild_echo_26.path(), vec![4]);
    let plan = FailurePlan { rank: 2, when: FailAt::AfterCommits { commits: 1, pragma: 6 } };
    let rec = Job::new(4, cfg).failure(plan).run(app).unwrap();
    assert_eq!(rec.restarts, 1);
    // The in-job cross-check is the real assertion; reaching here means the
    // recovered wildcard order was consistent everywhere.
    assert!(rec.handle.results.iter().all(|r| *r > 0));
}
