//! Table 2 — runtime overhead without checkpoints on the Lemieux platform
//! model (§6.2). Rank counts {2, 4, 8} stand in for the paper's
//! {64, 256, 1024}; the reproduced shape is "overhead below ~10% with no
//! growth trend in the rank count".

use c3_bench::{paper, tables};
use mpisim::ClusterModel;

fn main() {
    let t = tables::overhead_table(
        "Table 2 — runtimes without checkpoints (Lemieux model; paper procs 64/256/1024 -> 2/4/8)",
        |_| ClusterModel::lemieux(),
        &[2, 4, 8],
        paper::TABLE2_LEMIEUX_64,
    );
    t.print();
    println!("\nPaper's overhead sweep across 64/256/1024 procs (reference):");
    for (code, ohs) in paper::TABLE2_OVERHEAD_SWEEP {
        println!("  {code:8} {:?}", ohs);
    }
}
