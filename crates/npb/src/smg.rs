//! SMG — a PCG solver with a semicoarsening-multigrid preconditioner (the
//! SMG2000 skeleton from the ASCI Purple benchmarks).
//!
//! A 1D diffusion system distributed in block rows: the outer solver is
//! preconditioned conjugate gradient (`hypre_PCGSolve`) and the
//! preconditioner is one multigrid V-cycle per application
//! (`hypre_SMGSolve`) with weighted-Jacobi smoothing, halo exchanges at
//! every level, and heavy smoothing on the coarsest level.
//!
//! The paper places **eight** checkpoint locations in SMG2000 (§6.3): at the
//! top of the `while i` loop in `hypre_PCGSolve`, at the top of the `for i`
//! loop in `hypre_SMGSolve`, and five more throughout `main` — "a mixture of
//! locations both inside and outside main computation loops". We mirror
//! that: the saved state carries a phase marker *and*, for the in-V-cycle
//! location, the V-cycle's own descent position — the moral equivalent of
//! the C³ precompiler saving the execution context so recovery resumes at
//! the pragma, not at some earlier loop head.
//!
//! Like hypre, the solver preallocates its level hierarchy once (`vf`/`vu`,
//! one RHS and one correction array per ladder level) and the V-cycle writes
//! into those arrays in place. The checkpoint therefore always dumps the
//! same fixed memory regions — levels the current descent has not reached
//! yet simply still hold the previous cycle's values, exactly as the C
//! original's heap would. A layout that is identical at every pragma site is
//! also what lets incremental checkpointing patch chunks instead of
//! rewriting them.

use crate::backend::{Comm, Op};
use crate::grid::{apply_helmholtz, gather_solve_bcast, h2_of, jacobi, prolong_add, restrict_fw};
use mpisim::MpiError;
use statesave::codec::{CodecError, Decoder, Encoder};

/// SMG parameters.
#[derive(Clone, Copy, Debug)]
pub struct SmgConfig {
    /// log2 of the fine-grid unknown count (grid size `2^k`, distributed).
    pub log2_n: u32,
    /// PCG iterations.
    pub iters: u64,
    /// Jacobi sweeps per level per V-cycle half.
    pub smooth: usize,
}

impl SmgConfig {
    /// Class presets.
    pub fn class(c: crate::Class) -> Self {
        match c {
            crate::Class::S => SmgConfig { log2_n: 8, iters: 4, smooth: 2 },
            crate::Class::W => SmgConfig { log2_n: 11, iters: 8, smooth: 2 },
            crate::Class::A => SmgConfig { log2_n: 14, iters: 12, smooth: 2 },
        }
    }
}

fn conv(e: CodecError) -> MpiError {
    MpiError::Internal(e.to_string())
}

/// Where in `main` execution stands — saved with every checkpoint so every
/// pragma location is a legitimate resume point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Before problem setup (pragma in `main`).
    PreSetup,
    /// After setup, before the solve (two pragmas in `main`).
    PreSolve,
    /// Inside `hypre_PCGSolve` at iteration `iter`, top of the loop.
    Solve,
    /// Inside the preconditioner V-cycle of iteration `iter` (`lvl` carries
    /// the descent position; `vf`/`vu` hold the per-level data).
    SolveInVcycle,
    /// After the solve (two pragmas in `main`).
    PostSolve,
}

impl Phase {
    fn code(self) -> u8 {
        match self {
            Phase::PreSetup => 0,
            Phase::PreSolve => 1,
            Phase::Solve => 2,
            Phase::SolveInVcycle => 3,
            Phase::PostSolve => 4,
        }
    }
    fn from_code(c: u8) -> Result<Self, MpiError> {
        Ok(match c {
            0 => Phase::PreSetup,
            1 => Phase::PreSolve,
            2 => Phase::Solve,
            3 => Phase::SolveInVcycle,
            4 => Phase::PostSolve,
            other => return Err(MpiError::Internal(format!("bad SMG phase {other}"))),
        })
    }
}

#[derive(Clone, Debug)]
struct SmgState {
    phase: Phase,
    iter: u64,
    x: Vec<f64>,
    r: Vec<f64>,
    pdir: Vec<f64>,
    rho: f64,
    rhs: Vec<f64>,
    /// Descent position of the in-flight V-cycle; meaningful only in
    /// [`Phase::SolveInVcycle`] (stale otherwise, like any C local).
    lvl: usize,
    /// Per-level V-cycle RHS arrays (`vf[0]` receives the residual handed
    /// to the preconditioner), allocated once at setup like hypre's level
    /// hierarchy and overwritten in place by each descent.
    vf: Vec<Vec<f64>>,
    /// Per-level correction arrays, same lifecycle as `vf`.
    vu: Vec<Vec<f64>>,
}

impl SmgState {
    fn fresh() -> Self {
        SmgState {
            phase: Phase::PreSetup,
            iter: 0,
            x: Vec::new(),
            r: Vec::new(),
            pdir: Vec::new(),
            rho: 0.0,
            rhs: Vec::new(),
            lvl: 0,
            vf: Vec::new(),
            vu: Vec::new(),
        }
    }
    fn save(&self, e: &mut Encoder) {
        save_parts(
            (self.phase, self.iter, self.rho),
            (&self.x, &self.r, &self.pdir, &self.rhs),
            self.lvl,
            &self.vf,
            &self.vu,
            e,
        );
    }
    fn load(b: &[u8]) -> Result<Self, MpiError> {
        let mut d = Decoder::new(b);
        let phase = Phase::from_code(d.u8().map_err(conv)?)?;
        let iter = d.u64().map_err(conv)?;
        let x = d.f64_vec().map_err(conv)?;
        let r = d.f64_vec().map_err(conv)?;
        let pdir = d.f64_vec().map_err(conv)?;
        let rho = d.f64().map_err(conv)?;
        let rhs = d.f64_vec().map_err(conv)?;
        let lvl = d.usize().map_err(conv)?;
        let levels = d.usize().map_err(conv)?;
        let mut vf = Vec::with_capacity(levels);
        let mut vu = Vec::with_capacity(levels);
        for _ in 0..levels {
            vf.push(d.f64_vec().map_err(conv)?);
            vu.push(d.f64_vec().map_err(conv)?);
        }
        Ok(SmgState { phase, iter, x, r, pdir, rho, rhs, lvl, vf, vu })
    }
}

/// The level ladder for an `n_global` fine grid: halve down to a fixed,
/// rank-count-independent coarse floor so the preconditioner (and hence the
/// numerical result) is identical for every `p`. The caller asserts
/// `p <= COARSEST / 2`, which keeps every rank at >= 2 points per level.
const COARSEST: usize = 32;

fn level_sizes(n_global: usize) -> Vec<usize> {
    let mut sizes = vec![n_global];
    while sizes.last().unwrap() / 2 >= COARSEST && sizes.last().unwrap() % 2 == 0 {
        let s = sizes.last().unwrap() / 2;
        sizes.push(s);
    }
    sizes
}

/// Checkpoint-pragma callback fired at the top of every descent level with
/// `(comm, level, vf, vu)` — the position and hierarchy a save would need.
type PragmaFn<'a, C> =
    dyn FnMut(&mut C, usize, &[Vec<f64>], &[Vec<f64>]) -> Result<(), MpiError> + 'a;

/// One V-cycle of the multigrid preconditioner over the preallocated level
/// hierarchy, resumable: `start_lvl` is 0 for a fresh cycle or the descent
/// position restored from a checkpoint (with `vf[0..=start_lvl]` and
/// `vu[0..start_lvl]` already holding this cycle's data). `pragma` fires at
/// the top of every descent level (the paper's `hypre_SMGSolve` pragma).
fn vcycle<C: Comm>(
    comm: &mut C,
    n_global: usize,
    smooth: usize,
    start_lvl: usize,
    vf: &mut [Vec<f64>],
    vu: &mut [Vec<f64>],
    pragma: &mut PragmaFn<'_, C>,
) -> Result<Vec<f64>, MpiError> {
    let sizes = level_sizes(n_global);
    let levels = sizes.len();
    debug_assert_eq!(vf.len(), levels);

    // Descend: smooth, compute residual, restrict. Arrays beyond the
    // current level keep the previous cycle's bytes until overwritten.
    for lvl in start_lvl..levels {
        pragma(comm, lvl, vf, vu)?;
        let nl = sizes[lvl];
        if lvl + 1 < levels {
            vu[lvl].fill(0.0);
            jacobi(comm, &mut vu[lvl], &vf[lvl], h2_of(nl), smooth, 300 + 20 * lvl as i32)?;
            let au = apply_helmholtz(comm, &vu[lvl], h2_of(nl), 400 + 20 * lvl as i32)?;
            let res: Vec<f64> = vf[lvl].iter().zip(&au).map(|(f, a)| f - a).collect();
            let coarse = restrict_fw(comm, &res, 500 + 20 * lvl as i32)?;
            vf[lvl + 1].copy_from_slice(&coarse);
        } else {
            // Coarsest level: exact gather-solve-broadcast (hypre-style),
            // identical for every rank count.
            let u = gather_solve_bcast(comm, &vf[lvl], nl, h2_of(nl))?;
            vu[lvl].copy_from_slice(&u);
        }
    }

    // Ascend: prolong and post-smooth in place (no pragmas; the paper's SMG
    // pragma is in the descent loop).
    let mut correction = vu[levels - 1].clone();
    for lvl in (0..levels - 1).rev() {
        prolong_add(comm, &correction, &mut vu[lvl], 700 + 20 * lvl as i32)?;
        jacobi(comm, &mut vu[lvl], &vf[lvl], h2_of(sizes[lvl]), smooth, 800 + 20 * lvl as i32)?;
        correction.clone_from(&vu[lvl]);
    }
    Ok(correction)
}

/// Finish one PCG iteration given the preconditioned residual `z`. The
/// level hierarchy is left as the finished cycle wrote it — stale data,
/// exactly like hypre's heap between preconditioner applications.
fn finish_iteration<C: Comm>(comm: &mut C, st: &mut SmgState, z: Vec<f64>) -> Result<(), MpiError> {
    let local_rz: f64 = st.r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let rho_new = comm.allreduce_f64(local_rz, Op::Sum)?;
    let beta = rho_new / st.rho;
    for i in 0..st.pdir.len() {
        st.pdir[i] = z[i] + beta * st.pdir[i];
    }
    st.rho = rho_new;
    st.iter += 1;
    st.phase = Phase::Solve;
    Ok(())
}

/// Run one preconditioner application (V-cycle) for `st`, firing the
/// in-V-cycle pragma at every descent level. Split-borrows the state so the
/// pragma closure can encode the scalars and solver vectors while `vcycle`
/// mutates the level hierarchy.
fn precondition<C: Comm>(
    comm: &mut C,
    n: usize,
    smooth: usize,
    st: &mut SmgState,
) -> Result<Vec<f64>, MpiError> {
    let SmgState { phase, iter, rho, x, r, pdir, rhs, lvl, vf, vu } = st;
    let (head, tail) = ((*phase, *iter, *rho), (&x[..], &r[..], &pdir[..], &rhs[..]));
    vcycle(comm, n, smooth, *lvl, vf, vu, &mut |c, at, f, u| {
        c.pragma(&mut |e| save_parts(head, tail, at, f, u, e)).map(|_| ())
    })
}

/// Run SMG; returns the solution norm.
pub fn run<C: Comm>(comm: &mut C, cfg: &SmgConfig) -> Result<f64, MpiError> {
    let me = comm.rank();
    let p = comm.nranks();
    let n = 1usize << cfg.log2_n;
    assert_eq!(n % p, 0, "SMG rank count must divide the grid");
    assert!(p <= COARSEST / 2, "SMG supports at most {} ranks", COARSEST / 2);
    let nl = n / p;
    let lo = me * nl;
    let h2 = h2_of(n);

    let mut st = match comm.take_restored_state() {
        Some(b) => SmgState::load(&b)?,
        None => SmgState::fresh(),
    };

    // --- main, pragma #1: before setup ---
    if st.phase == Phase::PreSetup {
        comm.pragma(&mut |e| st.save(e))?;
        st.rhs = (lo..lo + nl)
            .map(|g| {
                let t = g as f64 / n as f64;
                (2.0 * std::f64::consts::PI * t).sin()
                    + 0.3 * (6.0 * std::f64::consts::PI * t).sin()
            })
            .collect();
        st.x = vec![0.0; nl];
        // Allocate the level hierarchy once, hypre-style (per-rank slices
        // of each ladder level).
        let lsizes: Vec<usize> = level_sizes(n).iter().map(|s| s / p).collect();
        st.vf = lsizes.iter().map(|&s| vec![0.0; s]).collect();
        st.vu = lsizes.iter().map(|&s| vec![0.0; s]).collect();
        st.phase = Phase::PreSolve;
    }

    // --- main, pragmas #2 and #3: after setup, before the solve ---
    if st.phase == Phase::PreSolve {
        comm.pragma(&mut |e| st.save(e))?;
        // r = rhs - A·0 = rhs; z = M⁻¹ r; p = z; rho = <r, z>.
        st.r = st.rhs.clone();
        comm.pragma(&mut |e| st.save(e))?;
        st.vf[0].copy_from_slice(&st.r);
        st.lvl = 0;
        let z = {
            let SmgState { vf, vu, .. } = &mut st;
            vcycle(comm, n, cfg.smooth, 0, vf, vu, &mut |_c, _l, _f, _u| Ok(()))?
        };
        let local: f64 = st.r.iter().zip(&z).map(|(a, b)| a * b).sum();
        st.rho = comm.allreduce_f64(local, Op::Sum)?;
        st.pdir = z;
        st.phase = Phase::Solve;
    }

    // --- hypre_PCGSolve (pragmas #4 at loop top, #5 inside the V-cycle) ---
    loop {
        // A restored in-V-cycle state re-enters here first: resume the
        // preconditioner from the saved descent position. A further
        // checkpoint inside the resumed V-cycle is again possible.
        if st.phase == Phase::SolveInVcycle {
            let z = precondition(comm, n, cfg.smooth, &mut st)?;
            finish_iteration(comm, &mut st, z)?;
            continue;
        }
        debug_assert_eq!(st.phase, Phase::Solve);
        if st.iter >= cfg.iters {
            st.phase = Phase::PostSolve;
            break;
        }
        // §6.3: pragma at the top of the while-i loop in hypre_PCGSolve.
        comm.pragma(&mut |e| st.save(e))?;
        let ap = apply_helmholtz(comm, &st.pdir, h2, 100)?;
        let local_pap: f64 = st.pdir.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let pap = comm.allreduce_f64(local_pap, Op::Sum)?;
        if !pap.is_finite() || pap.abs() < 1e-290 {
            // The solve converged to machine zero; continuing would divide
            // 0/0. The guard is an all-reduced value, so every rank takes
            // this branch at the same iteration (deterministic on recovery).
            st.phase = Phase::PostSolve;
            break;
        }
        let alpha = st.rho / pap;
        for i in 0..nl {
            st.x[i] += alpha * st.pdir[i];
            st.r[i] -= alpha * ap[i];
        }
        // Preconditioner with the in-V-cycle pragma: the state saved there
        // marks this exact position (SolveInVcycle + descent level).
        st.phase = Phase::SolveInVcycle;
        st.vf[0].copy_from_slice(&st.r);
        st.lvl = 0;
        let z = precondition(comm, n, cfg.smooth, &mut st)?;
        finish_iteration(comm, &mut st, z)?;
    }

    // --- main, pragmas #6 and #7: after the solve ---
    comm.pragma(&mut |e| st.save(e))?;
    let local: f64 = st.x.iter().map(|v| v * v).sum();
    let norm = comm.allreduce_f64(local, Op::Sum)?;
    comm.pragma(&mut |e| st.save(e))?;
    Ok((norm / n as f64).sqrt())
}

/// Borrow split so the V-cycle pragma can encode the full state (scalars +
/// solver vectors) while `vcycle` independently mutates the hierarchy.
type StateHead = (Phase, u64, f64);
type StateTail<'a> = (&'a [f64], &'a [f64], &'a [f64], &'a [f64]);

/// The single serialization shape every pragma site uses: scalars, the four
/// solver vectors, the descent position, then the whole level hierarchy.
/// Post-setup the encoded length is identical at every site (see the module
/// doc on fixed layouts and incremental checkpointing).
fn save_parts(
    head: StateHead,
    tail: StateTail<'_>,
    lvl: usize,
    vf: &[Vec<f64>],
    vu: &[Vec<f64>],
    e: &mut Encoder,
) {
    let (phase, iter, rho) = head;
    let (x, r, pdir, rhs) = tail;
    e.u8(phase.code());
    e.u64(iter);
    e.f64_slice(x);
    e.f64_slice(r);
    e.f64_slice(pdir);
    e.f64(rho);
    e.f64_slice(rhs);
    e.usize(lvl);
    e.usize(vf.len());
    for (f, u) in vf.iter().zip(vu) {
        e.f64_slice(f);
        e.f64_slice(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcycle_reduces_helmholtz_residual() {
        let out = mpisim::launch(&mpisim::JobSpec::new(1), |ctx| {
            let n = 256usize;
            let f: Vec<f64> =
                (0..n).map(|g| (2.0 * std::f64::consts::PI * g as f64 / n as f64).sin()).collect();
            let sizes = level_sizes(n);
            let mut vf: Vec<Vec<f64>> = sizes.iter().map(|&s| vec![0.0; s]).collect();
            let mut vu = vf.clone();
            vf[0].copy_from_slice(&f);
            let z = vcycle(ctx, n, 2, 0, &mut vf, &mut vu, &mut |_c, _l, _f, _u| Ok(()))?;
            let az = apply_helmholtz(ctx, &z, h2_of(n), 900)?;
            let res: f64 = f.iter().zip(&az).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            let f0: f64 = f.iter().map(|v| v * v).sum::<f64>().sqrt();
            Ok(res / f0)
        })
        .unwrap();
        assert!(out.results[0] < 0.3, "V-cycle barely reduced the residual: {}", out.results[0]);
    }

    #[test]
    fn level_ladder_is_rank_count_independent() {
        let sizes = level_sizes(1 << 10);
        assert!(sizes.len() > 1);
        assert_eq!(*sizes.last().unwrap(), COARSEST);
        for w in sizes.windows(2) {
            assert_eq!(w[0], 2 * w[1]);
        }
    }

    #[test]
    fn state_roundtrips_through_codec() {
        let st = SmgState {
            phase: Phase::SolveInVcycle,
            iter: 7,
            x: vec![1.0, 2.0, 3.0, 4.0],
            r: vec![3.0; 4],
            pdir: vec![4.0, 5.0, 6.0, 7.0],
            rho: 0.25,
            rhs: vec![9.0; 4],
            lvl: 1,
            vf: vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0], vec![7.0]],
            vu: vec![vec![8.0, 9.0, 10.0, 11.0], vec![12.0, 13.0], vec![14.0]],
        };
        let mut e = Encoder::new();
        st.save(&mut e);
        let back = SmgState::load(&e.finish()).unwrap();
        assert_eq!(back.phase, st.phase);
        assert_eq!(back.iter, st.iter);
        assert_eq!(back.x, st.x);
        assert_eq!(back.rho, st.rho);
        assert_eq!(back.lvl, st.lvl);
        assert_eq!(back.vf, st.vf);
        assert_eq!(back.vu, st.vu);
    }

    /// Every post-setup pragma site must produce an identically shaped
    /// encoding (same length, same field offsets) regardless of whether —
    /// or how deep — a V-cycle is in flight, or incremental checkpointing
    /// cannot patch chunks across commits.
    #[test]
    fn serialized_layout_is_pragma_site_invariant() {
        let base = SmgState {
            phase: Phase::Solve,
            iter: 3,
            x: vec![1.0; 4],
            r: vec![2.0; 4],
            pdir: vec![3.0; 4],
            rho: 1.0,
            rhs: vec![4.0; 4],
            lvl: 0,
            vf: vec![vec![1.0; 4], vec![2.0; 2], vec![3.0; 1]],
            vu: vec![vec![4.0; 4], vec![5.0; 2], vec![6.0; 1]],
        };
        let mut lens = Vec::new();
        for (phase, lvl) in
            [(Phase::Solve, 2), (Phase::SolveInVcycle, 0), (Phase::SolveInVcycle, 2)]
        {
            let st = SmgState { phase, lvl, ..base.clone() };
            let mut e = Encoder::new();
            st.save(&mut e);
            lens.push(e.finish().len());
        }
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "layout varies by site: {lens:?}");
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = SmgConfig { log2_n: 8, iters: 5, smooth: 2 };
        let serial =
            mpisim::launch(&mpisim::JobSpec::new(1), |ctx| run(ctx, &cfg)).unwrap().results[0];
        for p in [2usize, 4] {
            let par =
                mpisim::launch(&mpisim::JobSpec::new(p), |ctx| run(ctx, &cfg)).unwrap().results[0];
            assert!(
                (serial - par).abs() <= 1e-7 * serial.abs().max(1e-12),
                "p={p}: {par} vs {serial}"
            );
        }
    }
}
