//! A barrier-free pipeline (wavefront) computation — the program shape that
//! motivates *non-blocking* checkpoint coordination (§1, §2.2).
//!
//! Rank r transforms a block of rows and streams each finished row to rank
//! r+1, so the ranks run permanently out of phase: when rank 0 reaches its
//! k-th pragma, rank 3 is still several rows behind. A blocking scheme would
//! have to drain the whole pipeline to a barrier before saving anything; the
//! C³ protocol instead lets every rank checkpoint *where it is*, classifies
//! the in-flight rows as late messages, logs them, and replays them on
//! recovery.
//!
//! The example prints each rank's own iteration at the moment it takes the
//! checkpoint — they genuinely differ, i.e. the recovery line is not a
//! barrier cut.
//!
//! Run with: `cargo run --example wavefront_pipeline`

use c3::{C3Config, C3Ctx, C3Error, FailAt, FailurePlan};
use statesave::codec::{Decoder, Encoder};

const ROWS: u64 = 40;
const WIDTH: usize = 64;

struct Stage {
    row: u64,
    acc: Vec<f64>,
}

impl Stage {
    fn save(&self, e: &mut Encoder) {
        e.u64(self.row);
        e.f64_slice(&self.acc);
    }
    fn load(b: &[u8]) -> Result<Self, C3Error> {
        let mut d = Decoder::new(b);
        Ok(Stage { row: d.u64()?, acc: d.f64_vec()? })
    }
}

/// Rank 0 generates rows; every other rank receives a row from its
/// predecessor, transforms it, and forwards it; the last rank folds rows
/// into a checksum. No barrier anywhere.
fn pipeline(ctx: &mut C3Ctx<'_>) -> Result<f64, C3Error> {
    let me = ctx.rank();
    let last = ctx.nranks() - 1;
    let mut st = match ctx.take_restored_state() {
        Some(b) => {
            let st = Stage::load(&b)?;
            println!("  [rank {me}] resumed at row {}", st.row);
            st
        }
        None => Stage { row: 0, acc: vec![0.0; WIDTH] },
    };

    while st.row < ROWS {
        let took = ctx.pragma(|e| st.save(e))?;
        if took {
            println!("  [rank {me}] checkpointing at its own row {} (no barrier)", st.row);
        }
        if me == 0 {
            // Generate a deterministic row and push it downstream.
            let row: Vec<f64> =
                (0..WIDTH).map(|c| ((st.row as usize * WIDTH + c) % 101) as f64 / 101.0).collect();
            ctx.send(1, 9, &row)?;
            for (a, r) in st.acc.iter_mut().zip(&row) {
                *a += r;
            }
        } else {
            let (mut row, _) = ctx.recv::<f64>((me - 1) as i32, 9)?;
            // Stage transform: smooth + scale (stands in for a real stencil
            // stage; cheap but data-dependent).
            for c in 0..WIDTH {
                let l = if c == 0 { 0.0 } else { row[c - 1] };
                let r = if c + 1 == WIDTH { 0.0 } else { row[c + 1] };
                row[c] = 0.5 * row[c] + 0.25 * (l + r) + 0.01 * me as f64;
            }
            if me < last {
                ctx.send(me + 1, 9, &row)?;
            }
            for (a, r) in st.acc.iter_mut().zip(&row) {
                *a = a.mul_add(1.0000001, *r);
            }
        }
        st.row += 1;
    }

    // Fold all per-rank accumulators (the only collective, after the loop).
    let local: f64 = st.acc.iter().sum();
    let total = ctx.allreduce_f64(local, &mpisim::ReduceOp::Sum)?;
    Ok(total)
}

fn main() {
    let store = std::env::temp_dir().join(format!("c3-wavefront-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    println!("== failure-free pipeline ==");
    let baseline = c3::Job::new(4, C3Config::passive(&store)).run(pipeline).unwrap();
    println!("  checksum: {:.9}", baseline.results[0]);

    println!("== checkpoint mid-stream at rank 0's row 12; rank 3 fails at its row 30 ==");
    let cfg = C3Config::at_pragmas(&store, vec![12]);
    let plan = FailurePlan { rank: 3, when: FailAt::AfterCommits { commits: 1, pragma: 30 } };
    let rec = c3::Job::new(4, cfg).failure(plan).run(pipeline).unwrap();
    println!("  restarts: {}", rec.restarts);
    println!("  checksum: {:.9}", rec.handle.results[0]);

    assert_eq!(rec.handle.results, baseline.results);
    println!("== pipeline recovered exactly; the recovery line crossed in-flight rows ==");
}
