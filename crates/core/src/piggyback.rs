//! Piggybacked message metadata — three bits per message (§3.2).
//!
//! Because a message can cross at most one recovery line, the full epoch
//! number never needs to travel: "if we imagine that epochs are colored red,
//! green, and blue successively... the integer Epoch can be replaced by
//! Epoch-color, which can be encoded in two bits. Furthermore, a single
//! piggybacked bit is adequate to encode whether the sender of a message has
//! stopped logging non-deterministic events. Therefore, it is sufficient to
//! piggyback three bits on each outgoing message."
//!
//! This module is deliberately separate from the protocol ("the new
//! implementation separates the implementation of piggybacking from the rest
//! of the protocol", §4.5): the protocol talks in terms of [`PigData`] and
//! [`MsgClass`]; how those are squeezed onto the wire is encapsulated here.
//! A full (epoch-integer) encoding is provided for the ablation benchmark.

use crate::mode::Mode;

/// Logical piggyback content: the sender's epoch and whether it is still
/// logging non-deterministic events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PigData {
    /// Sender's epoch number at send time.
    pub epoch: u64,
    /// True while the sender is in `NonDet-Log` (§3.2 question 2: "has the
    /// sending process stopped logging? No, if the piggybacked mode is
    /// NonDet-Log, and yes otherwise").
    pub logging: bool,
}

impl PigData {
    /// The piggyback for a process currently in `mode` and `epoch`.
    pub fn of(epoch: u64, mode: Mode) -> Self {
        PigData { epoch, logging: mode.nondet_logging() }
    }
}

/// Message classification relative to the receiver's epoch (Definition 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgClass {
    /// Sender's epoch < receiver's epoch: crossed the line forward; must be
    /// logged and replayed.
    Late,
    /// Same epoch.
    IntraEpoch,
    /// Sender's epoch > receiver's epoch: crossed the line backward; must be
    /// suppressed on recovery.
    Early,
}

/// Encode the three protocol bits into a wire byte:
/// bits 0–1 = epoch mod 3 (the color), bit 2 = logging.
#[inline]
pub fn encode(pig: PigData) -> u8 {
    ((pig.epoch % 3) as u8) | ((pig.logging as u8) << 2)
}

/// Decode a wire byte into (epoch color, logging bit).
#[inline]
pub fn decode(byte: u8) -> (u8, bool) {
    (byte & 0b11, byte & 0b100 != 0)
}

/// Classify a message from its sender's epoch *color* and the receiver's
/// epoch. Sound because epochs of sender and receiver can differ by at most
/// one (a message crosses at most one recovery line).
#[inline]
pub fn classify(receiver_epoch: u64, sender_color: u8) -> MsgClass {
    let rc = (receiver_epoch % 3) as u8;
    match (sender_color + 3 - rc) % 3 {
        0 => MsgClass::IntraEpoch,
        1 => MsgClass::Early,
        2 => MsgClass::Late,
        _ => unreachable!(),
    }
}

/// Classify + recover the sender's absolute epoch (receiver-relative).
#[inline]
pub fn sender_epoch(receiver_epoch: u64, sender_color: u8) -> u64 {
    match classify(receiver_epoch, sender_color) {
        MsgClass::IntraEpoch => receiver_epoch,
        MsgClass::Early => receiver_epoch + 1,
        MsgClass::Late => receiver_epoch.saturating_sub(1),
    }
}

/// The naive full encoding (epoch as u64 + mode byte) used by the
/// `piggyback` ablation benchmark: 9 bytes instead of 3 bits.
pub fn encode_full(pig: PigData) -> [u8; 9] {
    let mut out = [0u8; 9];
    out[..8].copy_from_slice(&pig.epoch.to_le_bytes());
    out[8] = pig.logging as u8;
    out
}

/// Decode the full encoding.
pub fn decode_full(b: &[u8; 9]) -> PigData {
    PigData { epoch: u64::from_le_bytes(b[..8].try_into().unwrap()), logging: b[8] != 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_bits_only() {
        for e in 0..9u64 {
            for l in [false, true] {
                assert!(encode(PigData { epoch: e, logging: l }) < 8);
            }
        }
    }

    #[test]
    fn classification_matches_definition_one() {
        for re in 0..12u64 {
            // Sender one behind: late.
            if re > 0 {
                let c = ((re - 1) % 3) as u8;
                assert_eq!(classify(re, c), MsgClass::Late);
                assert_eq!(sender_epoch(re, c), re - 1);
            }
            // Same epoch: intra.
            let c = (re % 3) as u8;
            assert_eq!(classify(re, c), MsgClass::IntraEpoch);
            assert_eq!(sender_epoch(re, c), re);
            // Sender one ahead: early.
            let c = ((re + 1) % 3) as u8;
            assert_eq!(classify(re, c), MsgClass::Early);
            assert_eq!(sender_epoch(re, c), re + 1);
        }
    }

    #[test]
    fn logging_bit_roundtrip() {
        let p = PigData { epoch: 7, logging: true };
        let (c, l) = decode(encode(p));
        assert_eq!(c, 1); // 7 % 3
        assert!(l);
        let p2 = PigData { epoch: 7, logging: false };
        let (_, l2) = decode(encode(p2));
        assert!(!l2);
    }

    #[test]
    fn full_encoding_roundtrip() {
        let p = PigData { epoch: u64::MAX - 5, logging: true };
        assert_eq!(decode_full(&encode_full(p)), p);
    }

    #[test]
    fn of_mode_maps_logging_bit() {
        assert!(PigData::of(1, Mode::NonDetLog).logging);
        assert!(!PigData::of(1, Mode::RecvOnlyLog).logging);
        assert!(!PigData::of(1, Mode::Run).logging);
        assert!(!PigData::of(1, Mode::Restore).logging);
    }
}
