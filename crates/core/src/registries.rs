//! The protocol's message registries (§2.3, §3.1).
//!
//! * [`ReplayLog`] — the `Late-Message-Registry`: late-message *data* plus
//!   the *signatures* of intra-epoch wild-card receives logged during
//!   `NonDet-Log`, in application receive order. On recovery, receives are
//!   served from (and wild-cards forced by) this log.
//! * [`EarlyRegistry`] — signatures of early messages received, in order;
//!   saved with the checkpoint and distributed back to the original senders
//!   at restart.
//! * [`WasEarlyRegistry`] — the sender-side multiset built from peers'
//!   early registries; matching sends are suppressed during recovery.

use statesave::codec::{CodecError, Decoder, Encoder, Saveable};

/// A world rank (mirrors `mpisim::Rank`, kept as u32 on the wire).
pub type Rank = usize;

/// What kind of logical stream a registry entry refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum StreamKind {
    /// Plain point-to-point message with an application tag.
    P2p {
        /// Application tag.
        tag: i32,
    },
    /// One logical stream of collective call number `call` on its
    /// communicator (collectives match by call order, so the pair
    /// `(comm, call)` identifies the instance deterministically).
    Coll {
        /// Collective instance number on the communicator.
        call: u64,
    },
}

/// The paper's message signature, extended to collective streams:
/// `<sending node, tag-or-collective-instance, communicator>`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StreamSig {
    /// World rank of the sender.
    pub src: Rank,
    /// World rank of the receiver.
    pub dst: Rank,
    /// Communicator id.
    pub comm: u32,
    /// P2p tag or collective instance.
    pub kind: StreamKind,
}

impl Saveable for StreamSig {
    fn save(&self, e: &mut Encoder) {
        e.u32(self.src as u32);
        e.u32(self.dst as u32);
        e.u32(self.comm);
        match self.kind {
            StreamKind::P2p { tag } => {
                e.u8(0);
                e.i32(tag);
            }
            StreamKind::Coll { call } => {
                e.u8(1);
                e.u64(call);
            }
        }
    }
    fn load(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let src = d.u32()? as Rank;
        let dst = d.u32()? as Rank;
        let comm = d.u32()?;
        let kind = match d.u8()? {
            0 => StreamKind::P2p { tag: d.i32()? },
            1 => StreamKind::Coll { call: d.u64()? },
            k => return Err(CodecError(format!("bad StreamKind {k}"))),
        };
        Ok(StreamSig { src, dst, comm, kind })
    }
}

impl StreamSig {
    /// Does this signature match a receive request with (possibly wildcard)
    /// `src` and `tag` on `comm`? Only P2p entries match p2p requests.
    pub fn matches_p2p(&self, src: i32, tag: i32, comm: u32) -> bool {
        if self.comm != comm {
            return false;
        }
        let tag_ok = match self.kind {
            StreamKind::P2p { tag: t } => tag == mpisim::ANY_TAG || t == tag,
            StreamKind::Coll { .. } => return false,
        };
        tag_ok && (src == mpisim::ANY_SOURCE || self.src == src as Rank)
    }
}

/// One entry of the replay log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayEntry {
    /// The stream the entry describes.
    pub sig: StreamSig,
    /// `Some(payload)` for a logged **late** message (data replayed from the
    /// log); `None` for a logged intra-epoch **wild-card signature** (the
    /// wild-card is forced to this signature, data comes from the live
    /// re-execution).
    pub data: Option<Vec<u8>>,
}

impl Saveable for ReplayEntry {
    fn save(&self, e: &mut Encoder) {
        self.sig.save(e);
        match &self.data {
            None => e.u8(0),
            Some(d) => {
                e.u8(1);
                e.bytes(d);
            }
        }
    }
    fn load(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let sig = StreamSig::load(d)?;
        let data = match d.u8()? {
            0 => None,
            1 => Some(d.bytes()?),
            k => return Err(CodecError(format!("bad ReplayEntry discriminant {k}"))),
        };
        Ok(ReplayEntry { sig, data })
    }
}

/// The `Late-Message-Registry`: ordered log of late-message data and
/// intra-epoch wild-card signatures.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct ReplayLog {
    entries: std::collections::VecDeque<ReplayEntry>,
}

impl ReplayLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a late message's data.
    pub fn push_late(&mut self, sig: StreamSig, data: Vec<u8>) {
        self.entries.push_back(ReplayEntry { sig, data: Some(data) });
    }

    /// Append an intra-epoch wild-card receive's signature (NonDet-Log).
    pub fn push_wildcard_sig(&mut self, sig: StreamSig) {
        self.entries.push_back(ReplayEntry { sig, data: None });
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Do any entries still hold late *data*? (The Restore→Run condition
    /// cares about data entries; leftover wild-card signatures are dropped
    /// when recovery completes.)
    pub fn has_data(&self) -> bool {
        self.entries.iter().any(|e| e.data.is_some())
    }

    /// Total logged payload bytes (reported by the logging ablation bench).
    pub fn data_bytes(&self) -> usize {
        self.entries.iter().filter_map(|e| e.data.as_ref().map(|d| d.len())).sum()
    }

    /// Find and remove the first entry matching a p2p receive request.
    /// Returns the entry (late data or wild-card signature to force).
    pub fn take_p2p_match(&mut self, src: i32, tag: i32, comm: u32) -> Option<ReplayEntry> {
        let idx = self.entries.iter().position(|e| e.sig.matches_p2p(src, tag, comm))?;
        self.entries.remove(idx)
    }

    /// Find and remove the late-data entry for one collective stream.
    pub fn take_coll_match(&mut self, comm: u32, call: u64, src: Rank) -> Option<Vec<u8>> {
        let idx = self.entries.iter().position(|e| {
            e.sig.comm == comm
                && e.sig.src == src
                && e.sig.kind == StreamKind::Coll { call }
                && e.data.is_some()
        })?;
        self.entries.remove(idx).and_then(|e| e.data)
    }

    /// Drop all remaining wild-card signature entries (recovery complete).
    pub fn drop_wildcard_sigs(&mut self) {
        self.entries.retain(|e| e.data.is_some());
    }

    /// Serialize.
    pub fn save(&self, e: &mut Encoder) {
        e.u64(self.entries.len() as u64);
        for en in &self.entries {
            en.save(e);
        }
    }

    /// Deserialize.
    pub fn load(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = d.u64()? as usize;
        let mut entries = std::collections::VecDeque::with_capacity(n);
        for _ in 0..n {
            entries.push_back(ReplayEntry::load(d)?);
        }
        Ok(ReplayLog { entries })
    }
}

/// The `Early-Message-Registry`: signatures of early messages received, in
/// receive order.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct EarlyRegistry {
    entries: Vec<StreamSig>,
}

impl EarlyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one early message.
    pub fn push(&mut self, sig: StreamSig) {
        self.entries.push(sig);
    }

    /// Number of recorded early messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reset (after the registry is saved with the checkpoint).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The entries originating at `src` — what gets sent back to `src`
    /// during `chkpt_RestoreCheckpoint`.
    pub fn entries_from(&self, src: Rank) -> Vec<StreamSig> {
        self.entries.iter().copied().filter(|s| s.src == src).collect()
    }

    /// All entries in receive order.
    pub fn entries(&self) -> &[StreamSig] {
        &self.entries
    }

    /// Serialize.
    pub fn save(&self, e: &mut Encoder) {
        e.save(&self.entries.to_vec());
    }

    /// Deserialize.
    pub fn load(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(EarlyRegistry { entries: d.load()? })
    }
}

/// The `Was-Early-Registry`: a multiset of stream signatures whose matching
/// sends must be suppressed during recovery.
#[derive(Default, Debug, Clone)]
pub struct WasEarlyRegistry {
    counts: std::collections::HashMap<StreamSig, u32>,
    total: usize,
}

impl WasEarlyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one suppression obligation.
    pub fn add(&mut self, sig: StreamSig) {
        *self.counts.entry(sig).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total outstanding suppressions.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Is the registry empty? (Part of the Restore→Run condition.)
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// If a send with this signature must be suppressed, consume one
    /// obligation and return true.
    pub fn try_suppress(&mut self, sig: &StreamSig) -> bool {
        match self.counts.get_mut(sig) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(sig);
                }
                self.total -= 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{ANY_SOURCE, ANY_TAG};

    fn p2p(src: Rank, dst: Rank, tag: i32) -> StreamSig {
        StreamSig { src, dst, comm: 0, kind: StreamKind::P2p { tag } }
    }

    fn coll(src: Rank, dst: Rank, call: u64) -> StreamSig {
        StreamSig { src, dst, comm: 0, kind: StreamKind::Coll { call } }
    }

    #[test]
    fn p2p_matching_with_wildcards() {
        let s = p2p(2, 0, 7);
        assert!(s.matches_p2p(2, 7, 0));
        assert!(s.matches_p2p(ANY_SOURCE, 7, 0));
        assert!(s.matches_p2p(2, ANY_TAG, 0));
        assert!(s.matches_p2p(ANY_SOURCE, ANY_TAG, 0));
        assert!(!s.matches_p2p(1, 7, 0));
        assert!(!s.matches_p2p(2, 8, 0));
        assert!(!s.matches_p2p(2, 7, 1));
        // Collective entries never match p2p requests.
        assert!(!coll(2, 0, 7).matches_p2p(2, 7, 0));
    }

    #[test]
    fn replay_log_order_and_matching() {
        let mut log = ReplayLog::new();
        log.push_late(p2p(1, 0, 5), vec![1]);
        log.push_wildcard_sig(p2p(2, 0, 5));
        log.push_late(p2p(1, 0, 5), vec![2]);
        assert_eq!(log.len(), 3);
        assert!(log.has_data());
        assert_eq!(log.data_bytes(), 2);
        // A wildcard receive takes the earliest matching entry: the first
        // late message from 1.
        let e = log.take_p2p_match(ANY_SOURCE, ANY_TAG, 0).unwrap();
        assert_eq!(e.data, Some(vec![1]));
        // Next wildcard gets the signature entry (forcing the wildcard).
        let e = log.take_p2p_match(ANY_SOURCE, 5, 0).unwrap();
        assert!(e.data.is_none());
        assert_eq!(e.sig.src, 2);
        // A specific receive from 1 takes the remaining data entry.
        let e = log.take_p2p_match(1, 5, 0).unwrap();
        assert_eq!(e.data, Some(vec![2]));
        assert!(log.is_empty());
    }

    #[test]
    fn coll_matching_is_exact() {
        let mut log = ReplayLog::new();
        log.push_late(coll(3, 0, 11), vec![9, 9]);
        assert!(log.take_coll_match(0, 11, 2).is_none());
        assert!(log.take_coll_match(0, 12, 3).is_none());
        assert_eq!(log.take_coll_match(0, 11, 3).unwrap(), vec![9, 9]);
    }

    #[test]
    fn drop_wildcards_keeps_data() {
        let mut log = ReplayLog::new();
        log.push_wildcard_sig(p2p(1, 0, 1));
        log.push_late(p2p(2, 0, 1), vec![5]);
        log.drop_wildcard_sigs();
        assert_eq!(log.len(), 1);
        assert!(log.has_data());
    }

    #[test]
    fn replay_log_codec_roundtrip() {
        let mut log = ReplayLog::new();
        log.push_late(coll(1, 2, 3), vec![1, 2, 3]);
        log.push_wildcard_sig(p2p(0, 2, -0x7fff));
        let mut e = Encoder::new();
        log.save(&mut e);
        let buf = e.finish();
        let log2 = ReplayLog::load(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(log, log2);
    }

    #[test]
    fn early_registry_distribution() {
        let mut er = EarlyRegistry::new();
        er.push(p2p(1, 0, 4));
        er.push(p2p(2, 0, 4));
        er.push(p2p(1, 0, 9));
        assert_eq!(er.entries_from(1).len(), 2);
        assert_eq!(er.entries_from(2).len(), 1);
        assert_eq!(er.entries_from(0).len(), 0);
        let mut e = Encoder::new();
        er.save(&mut e);
        let buf = e.finish();
        let er2 = EarlyRegistry::load(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(er, er2);
    }

    #[test]
    fn was_early_multiset_semantics() {
        let mut we = WasEarlyRegistry::new();
        let s = p2p(0, 1, 7);
        we.add(s);
        we.add(s);
        assert_eq!(we.len(), 2);
        assert!(we.try_suppress(&s));
        assert!(we.try_suppress(&s));
        assert!(!we.try_suppress(&s));
        assert!(we.is_empty());
    }
}
