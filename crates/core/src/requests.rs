//! The request indirection table (§4.1).
//!
//! "To stay independent of the underlying MPI implementation, we implement a
//! separate indirection table for all requests. For each request allocated by
//! MPI, we allocate an entry in this table and use it to store the necessary
//! information, including type of operation, message parameters, and the
//! epoch in which the request has been allocated... The index to this table
//! replaces the MPI request in the target application. This enables our MPI
//! layer to instantiate all request objects with the same request
//! identifiers during recovery."
//!
//! The table also carries the §4.1 non-determinism machinery: a per-request
//! counter of unsuccessful `test` calls (recorded while in `NonDet-Log`,
//! replayed on recovery with the final `test` substituted by a `wait`), and
//! an ordered log of `wait_any`/`wait_some` completion indices.

use crate::piggyback::MsgClass;
use statesave::codec::{CodecError, Decoder, Encoder, Saveable};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Application-visible request handle (an index into the indirection table;
/// identifiers are deterministic across re-execution).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct C3Req(pub u64);

impl Saveable for C3Req {
    fn save(&self, e: &mut Encoder) {
        e.u64(self.0);
    }
    fn load(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(C3Req(d.u64()?))
    }
}

/// Operation type of a table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum C3ReqKind {
    /// Non-blocking send (buffered; complete at initiation).
    Send,
    /// Non-blocking receive.
    Recv,
}

/// One entry of the indirection table.
#[derive(Debug)]
pub struct ReqEntry {
    /// Operation type.
    pub kind: C3ReqKind,
    /// Source spec for receives (may be wildcard) / destination for sends.
    pub src: i32,
    /// Tag spec (may be wildcard for receives).
    pub tag: i32,
    /// Communicator id.
    pub comm: u32,
    /// Epoch in which the request was allocated.
    pub epoch_allocated: u64,
    /// The live substrate request, when one exists.
    pub mpi: Option<mpisim::ReqId>,
    /// Unsuccessful `test` calls recorded while in `NonDet-Log`.
    pub test_fails: u64,
    /// Completed during the current checkpoint period (entry retained until
    /// the table is saved — "we delay any deallocation of request table
    /// entries until after the request table has been saved").
    pub completed: bool,
    /// Classification of the message that completed this request, if it has
    /// completed ("we mark the type of message matching the posted request
    /// during each completed Test or Wait call").
    pub completed_class: Option<MsgClass>,
    /// Completion happened during a logging mode (needed for test replay).
    pub completed_during_log: bool,
    /// Entry kept only for the pending table save; free after saving.
    pub dealloc_deferred: bool,
}

/// Replay metadata for one request, as saved in the checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedReqMeta {
    /// Operation type (0 = send, 1 = recv on the wire).
    pub kind: C3ReqKind,
    /// Source / destination spec.
    pub src: i32,
    /// Tag spec.
    pub tag: i32,
    /// Communicator.
    pub comm: u32,
    /// Allocation epoch.
    pub epoch_allocated: u64,
    /// Unsuccessful tests to replay.
    pub test_fails: u64,
    /// Did the request complete while logging? (controls the Test→Wait
    /// substitution).
    pub completed_during_log: bool,
    /// Was it completed by a late message? (data comes from the log; the
    /// underlying receive must *not* be re-posted).
    pub completed_by_late: bool,
}

impl Saveable for SavedReqMeta {
    fn save(&self, e: &mut Encoder) {
        e.u8(match self.kind {
            C3ReqKind::Send => 0,
            C3ReqKind::Recv => 1,
        });
        e.i32(self.src);
        e.i32(self.tag);
        e.u32(self.comm);
        e.u64(self.epoch_allocated);
        e.u64(self.test_fails);
        e.bool(self.completed_during_log);
        e.bool(self.completed_by_late);
    }
    fn load(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let kind = match d.u8()? {
            0 => C3ReqKind::Send,
            1 => C3ReqKind::Recv,
            k => return Err(CodecError(format!("bad req kind {k}"))),
        };
        Ok(SavedReqMeta {
            kind,
            src: d.i32()?,
            tag: d.i32()?,
            comm: d.u32()?,
            epoch_allocated: d.u64()?,
            test_fails: d.u64()?,
            completed_during_log: d.bool()?,
            completed_by_late: d.bool()?,
        })
    }
}

/// A logged nondeterministic completion event (`wait_any` / `wait_some`
/// outcomes recorded during `NonDet-Log`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NondetEvent {
    /// `wait_any` completed the request at this position in the caller's
    /// array.
    WaitAny(u32),
    /// `wait_some` completed these positions.
    WaitSome(Vec<u32>),
}

impl Saveable for NondetEvent {
    fn save(&self, e: &mut Encoder) {
        match self {
            NondetEvent::WaitAny(i) => {
                e.u8(0);
                e.u32(*i);
            }
            NondetEvent::WaitSome(v) => {
                e.u8(1);
                e.save(v);
            }
        }
    }
    fn load(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => NondetEvent::WaitAny(d.u32()?),
            1 => NondetEvent::WaitSome(d.load()?),
            k => return Err(CodecError(format!("bad NondetEvent {k}"))),
        })
    }
}

/// The indirection table plus the saved-image machinery.
#[derive(Default, Debug)]
pub struct C3ReqTable {
    entries: BTreeMap<u64, ReqEntry>,
    next: u64,
    /// Ordered log of `wait_any`/`wait_some` outcomes (NonDet-Log only).
    pub nondet_events: VecDeque<NondetEvent>,
    /// Replay metadata for requests that re-execution will re-allocate
    /// (restored from a checkpoint; keyed by request id).
    pub replay: HashMap<u64, SavedReqMeta>,
}

impl C3ReqTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate an entry; ids are deterministic (monotone), so re-execution
    /// reproduces them.
    pub fn alloc(
        &mut self,
        kind: C3ReqKind,
        src: i32,
        tag: i32,
        comm: u32,
        epoch: u64,
        mpi: Option<mpisim::ReqId>,
    ) -> C3Req {
        let id = self.next;
        self.next += 1;
        self.entries.insert(
            id,
            ReqEntry {
                kind,
                src,
                tag,
                comm,
                epoch_allocated: epoch,
                mpi,
                test_fails: 0,
                completed: false,
                completed_class: None,
                completed_during_log: false,
                dealloc_deferred: false,
            },
        );
        C3Req(id)
    }

    /// Borrow an entry.
    pub fn get(&self, r: C3Req) -> Option<&ReqEntry> {
        self.entries.get(&r.0)
    }

    /// Mutably borrow an entry.
    pub fn get_mut(&mut self, r: C3Req) -> Option<&mut ReqEntry> {
        self.entries.get_mut(&r.0)
    }

    /// Remove an entry after the application collects it. If a checkpoint
    /// period is open (`defer`), the entry is retained for the table save.
    pub fn release(&mut self, r: C3Req, defer: bool) {
        if defer {
            if let Some(e) = self.entries.get_mut(&r.0) {
                e.dealloc_deferred = true;
            }
        } else {
            self.entries.remove(&r.0);
        }
    }

    /// Live entry count (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reset per-checkpoint-period nondeterminism bookkeeping (start of a
    /// checkpoint period: test counters and the event log).
    pub fn reset_period(&mut self) {
        for e in self.entries.values_mut() {
            e.test_fails = 0;
        }
        self.nondet_events.clear();
    }

    /// Serialize the table image at commit time: every entry (deferred ones
    /// included) with its replay metadata, the id watermark at the recovery
    /// line, and the nondeterminism log.
    pub fn save(&self, line_next: u64, e: &mut Encoder) {
        e.u64(line_next);
        let items: Vec<(u64, SavedReqMeta)> = self
            .entries
            .iter()
            .map(|(id, en)| {
                (
                    *id,
                    SavedReqMeta {
                        kind: en.kind,
                        src: en.src,
                        tag: en.tag,
                        comm: en.comm,
                        epoch_allocated: en.epoch_allocated,
                        test_fails: en.test_fails,
                        completed_during_log: en.completed_during_log,
                        completed_by_late: en.completed_class == Some(MsgClass::Late),
                    },
                )
            })
            .collect();
        e.u64(items.len() as u64);
        for (id, meta) in &items {
            e.u64(*id);
            meta.save(e);
        }
        let events: Vec<NondetEvent> = self.nondet_events.iter().cloned().collect();
        e.save(&events);
    }

    /// Rebuild from a checkpoint: the id counter is rolled back to the
    /// recovery line, pre-line entries become live again, and post-line
    /// entries become replay metadata for re-execution.
    ///
    /// Returns the pre-line entries that need their receives re-posted
    /// (not completed by a late message), in ascending id order.
    pub fn load(
        d: &mut Decoder<'_>,
        line_epoch: u64,
    ) -> Result<(Self, Vec<(u64, SavedReqMeta)>), CodecError> {
        let line_next = d.u64()?;
        let n = d.u64()? as usize;
        let mut table = C3ReqTable { next: line_next, ..Default::default() };
        let mut repost = Vec::new();
        for _ in 0..n {
            let id = d.u64()?;
            let meta = SavedReqMeta::load(d)?;
            if meta.epoch_allocated < line_epoch {
                // Crossed the recovery line: live again. The receive is
                // re-posted unless a late message completed it (then the
                // data is served from the replay log).
                if meta.kind == C3ReqKind::Recv && !meta.completed_by_late {
                    repost.push((id, meta.clone()));
                }
                table.entries.insert(
                    id,
                    ReqEntry {
                        kind: meta.kind,
                        src: meta.src,
                        tag: meta.tag,
                        comm: meta.comm,
                        epoch_allocated: meta.epoch_allocated,
                        mpi: None,
                        test_fails: meta.test_fails,
                        completed: meta.kind == C3ReqKind::Send,
                        completed_class: if meta.completed_by_late {
                            Some(MsgClass::Late)
                        } else {
                            None
                        },
                        completed_during_log: meta.completed_during_log,
                        dealloc_deferred: false,
                    },
                );
            } else {
                // Allocated after the line: deleted from the table ("roll
                // the contents of the request table back"), kept as replay
                // metadata for the deterministic re-allocation.
                table.replay.insert(id, meta);
            }
        }
        let events: Vec<NondetEvent> = d.load()?;
        table.nondet_events = events.into();
        Ok((table, repost))
    }

    /// Purge entries whose deallocation was deferred for the table save
    /// (end of `chkpt_CommitCheckpoint`).
    pub fn purge_deferred(&mut self) {
        self.entries.retain(|_, e| !e.dealloc_deferred);
    }

    /// The id watermark (next id to allocate) — captured at the recovery
    /// line for the table image.
    pub fn next_id(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_entry(t: &mut C3ReqTable, epoch: u64) -> C3Req {
        t.alloc(C3ReqKind::Recv, mpisim::ANY_SOURCE, 5, 0, epoch, None)
    }

    #[test]
    fn deterministic_ids() {
        let mut t = C3ReqTable::new();
        let a = recv_entry(&mut t, 0);
        let b = recv_entry(&mut t, 0);
        assert_eq!(a, C3Req(0));
        assert_eq!(b, C3Req(1));
    }

    #[test]
    fn deferred_release_keeps_entry_until_purge() {
        let mut t = C3ReqTable::new();
        let a = recv_entry(&mut t, 0);
        t.release(a, true);
        assert_eq!(t.len(), 1);
        t.purge_deferred();
        assert_eq!(t.len(), 0);
        let b = recv_entry(&mut t, 0);
        t.release(b, false);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn save_load_splits_pre_and_post_line() {
        let mut t = C3ReqTable::new();
        // Pre-line pending receive, completed by a late message.
        let a = recv_entry(&mut t, 3);
        t.get_mut(a).unwrap().completed_class = Some(MsgClass::Late);
        t.get_mut(a).unwrap().completed_during_log = true;
        // Pre-line pending receive, still open.
        let b = recv_entry(&mut t, 3);
        let line_next = t.next_id();
        // Post-line receive with test failures to replay.
        let c = recv_entry(&mut t, 4);
        t.get_mut(c).unwrap().test_fails = 7;

        let mut e = Encoder::new();
        t.save(line_next, &mut e);
        let buf = e.finish();
        let (t2, repost) = C3ReqTable::load(&mut Decoder::new(&buf), 4).unwrap();
        // Only b is re-posted (a was completed by late).
        assert_eq!(repost.len(), 1);
        assert_eq!(repost[0].0, b.0);
        // a and b are live entries; c is replay metadata.
        assert!(t2.get(a).is_some());
        assert!(t2.get(b).is_some());
        assert!(t2.get(c).is_none());
        assert_eq!(t2.replay.get(&c.0).unwrap().test_fails, 7);
        // The id counter resumed at the line: re-execution re-creates c with
        // the same id.
        assert_eq!(t2.next_id(), line_next);
        let mut t2 = t2;
        let c2 = recv_entry(&mut t2, 4);
        assert_eq!(c2, c);
    }

    #[test]
    fn nondet_event_log_roundtrip() {
        let mut t = C3ReqTable::new();
        t.nondet_events.push_back(NondetEvent::WaitAny(2));
        t.nondet_events.push_back(NondetEvent::WaitSome(vec![0, 3]));
        let mut e = Encoder::new();
        t.save(0, &mut e);
        let buf = e.finish();
        let (t2, _) = C3ReqTable::load(&mut Decoder::new(&buf), 0).unwrap();
        assert_eq!(t2.nondet_events.len(), 2);
        assert_eq!(t2.nondet_events[0], NondetEvent::WaitAny(2));
    }

    #[test]
    fn reset_period_clears_counters_and_events() {
        let mut t = C3ReqTable::new();
        let a = recv_entry(&mut t, 0);
        t.get_mut(a).unwrap().test_fails = 5;
        t.nondet_events.push_back(NondetEvent::WaitAny(0));
        t.reset_period();
        assert_eq!(t.get(a).unwrap().test_fails, 0);
        assert!(t.nondet_events.is_empty());
    }
}
