//! # npb — benchmark applications for the C³ reproduction
//!
//! Scaled-down but algorithmically real implementations of the codes the
//! paper evaluates (§6): the NAS Parallel Benchmarks CG, LU, SP, BT, MG, FT,
//! IS and EP, the SMG2000-like PCG+multigrid solver, and an HPL-like LU
//! factorization.
//!
//! Every kernel is written once against the [`Comm`] trait and runs on two
//! backends:
//!
//! * [`mpisim::RankCtx`] — the "Original" column of Tables 2–5: plain MPI,
//!   pragmas compile to nothing;
//! * [`c3::C3Ctx`] — the "C³" column: the co-ordination layer wraps every
//!   operation, pragmas may take checkpoints.
//!
//! This mirrors the paper's methodology exactly: the same source, compiled
//! with and without the C³ precompiler.
//!
//! Checkpoint pragma placements follow §6.3 (bottom of `conj_grad` loop for
//! CG, bottom of the `ssor` `istep` loop for LU, bottom of the `step` loop
//! for SP, eight locations for SMG2000, top of the panel loop for HPL).

// Numerical kernels index their stencils explicitly: the i/j loops mirror
// the papers' formulas and read better than zipped iterators in this domain.
#![allow(clippy::needless_range_loop)]

pub mod backend;
pub mod bt;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod grid;
pub mod hpl;
pub mod is;
pub mod lu;
pub mod mg;
pub mod smg;
pub mod sp;
pub mod verify;

pub use backend::Comm;

/// Problem classes, loosely following NPB naming: `S` (tiny smoke test),
/// `W` (workstation), `A` (the largest we run in-process).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Class {
    /// Tiny: unit tests and smoke runs.
    S,
    /// Small: integration tests and fast table rows.
    W,
    /// Medium: the benchmark tables.
    A,
}

impl Class {
    /// Parse from a letter.
    pub fn parse(s: &str) -> Option<Class> {
        match s {
            "S" | "s" => Some(Class::S),
            "W" | "w" => Some(Class::W),
            "A" | "a" => Some(Class::A),
            _ => None,
        }
    }

    /// Display letter.
    pub fn letter(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
        }
    }
}

/// The benchmark set of the paper's evaluation, for table harnesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kernel {
    /// Conjugate gradient.
    CG,
    /// SSOR wavefront solver.
    LU,
    /// Scalar pentadiagonal ADI.
    SP,
    /// Block tridiagonal ADI.
    BT,
    /// Multigrid V-cycles (the only one with barriers).
    MG,
    /// FFT with all-to-all transpose.
    FT,
    /// Integer bucket sort.
    IS,
    /// Embarrassingly parallel random tallies.
    EP,
    /// SMG2000-like PCG with multigrid preconditioner.
    SMG,
    /// HPL-like LU factorization with partial pivoting.
    HPL,
}

impl Kernel {
    /// All kernels.
    pub const ALL: [Kernel; 10] = [
        Kernel::CG,
        Kernel::LU,
        Kernel::SP,
        Kernel::BT,
        Kernel::MG,
        Kernel::FT,
        Kernel::IS,
        Kernel::EP,
        Kernel::SMG,
        Kernel::HPL,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::CG => "CG",
            Kernel::LU => "LU",
            Kernel::SP => "SP",
            Kernel::BT => "BT",
            Kernel::MG => "MG",
            Kernel::FT => "FT",
            Kernel::IS => "IS",
            Kernel::EP => "EP",
            Kernel::SMG => "SMG2000",
            Kernel::HPL => "HPL",
        }
    }

    /// Run this kernel on any backend at the given class.
    pub fn run<C: Comm>(self, comm: &mut C, class: Class) -> Result<f64, mpisim::MpiError> {
        match self {
            Kernel::CG => cg::run(comm, &cg::CgConfig::class(class)),
            Kernel::LU => lu::run(comm, &lu::LuConfig::class(class)),
            Kernel::SP => sp::run(comm, &sp::SpConfig::class(class)),
            Kernel::BT => bt::run(comm, &bt::BtConfig::class(class)),
            Kernel::MG => mg::run(comm, &mg::MgConfig::class(class)),
            Kernel::FT => ft::run(comm, &ft::FtConfig::class(class)),
            Kernel::IS => is::run(comm, &is::IsConfig::class(class)),
            Kernel::EP => ep::run(comm, &ep::EpConfig::class(class)),
            Kernel::SMG => smg::run(comm, &smg::SmgConfig::class(class)),
            Kernel::HPL => hpl::run(comm, &hpl::HplConfig::class(class)),
        }
    }
}
