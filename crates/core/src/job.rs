//! The unified job builder: one entry point for launch, restore, and chaos.
//!
//! The paper's protocol is agnostic to *how* a job is driven — any process
//! may initiate, any rank may die, the network may reorder, drop, or
//! duplicate. [`Job`] composes all of those axes behind a single builder:
//!
//! ```ignore
//! use c3::{ChaosPlan, Clock, Job};
//! use mpisim::NetModel;
//!
//! let rec = Job::new(4, cfg)
//!     .network(NetModel::reorder(seed).drop_rate(20).duplicate_rate(10))
//!     .chaos(ChaosPlan::from_seed(seed, &space))
//!     .clock(Clock::Virtual)
//!     .run(app)?;
//! assert_eq!(rec.results, baseline);
//! ```
//!
//! A plain run is a `Job` with no chaos plan; a restart-cost run is
//! [`Job::restore`]; a single fail-stop fault is [`Job::failure`]. The four
//! legacy `run_job*` free functions are one-line deprecated shims over this
//! builder (see [`crate::failure`]).
//!
//! The builder owns the restart/chaos orchestration: it arms the plan's
//! faults one incarnation at a time, restarts from the last committed
//! recovery line after each injected death, and asserts forward progress
//! (every restart consumes one fault of the budget and the committed line
//! never regresses). Network-fault entries of the plan
//! ([`crate::failure::NetFault`]) are merged into the job's [`NetModel`]
//! before launch, so a seed-derived plan perturbs the network and the
//! fail-stop schedule together — and [`crate::failure::shrink_plan`]
//! minimizes over both.

use crate::api::{C3Config, C3Ctx, C3Error, Clock, FailureTrigger};
use crate::failure::{ChaosPlan, FailurePlan};
use mpisim::{
    ClusterModel, JobError, JobHandle, JobSpec, NetModel, SchedMode, INJECTED_FAULT_MARKER,
};
use statesave::CkptStore;
use std::sync::Arc;

/// The outcome of a job that survived zero or more injected failures.
#[derive(Debug)]
pub struct RecoveredJob<T> {
    /// The completed job (per-rank results and statistics). Also reachable
    /// directly: `RecoveredJob` derefs to [`JobHandle`].
    pub handle: JobHandle<T>,
    /// How many times the job was restarted from a recovery line.
    pub restarts: u32,
    /// How many faults of the plan actually fired (= restarts; kept
    /// separately so callers can compare against the plan length).
    pub faults_fired: u32,
    /// The globally committed recovery line observed at each restart, in
    /// order — non-decreasing by the forward-progress invariant.
    pub lines: Vec<u64>,
}

impl<T> std::ops::Deref for RecoveredJob<T> {
    type Target = JobHandle<T>;
    fn deref(&self) -> &JobHandle<T> {
        &self.handle
    }
}

/// Builder for one protocol-instrumented job: topology, network model,
/// clock, restore mode, and fault plan. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Job {
    nranks: usize,
    cfg: C3Config,
    cluster: ClusterModel,
    net: NetModel,
    sched: SchedMode,
    chaos: ChaosPlan,
    restore: bool,
}

impl Job {
    /// A job of `nranks` ranks on the ideal, reliable network, fresh start,
    /// no fault injection.
    pub fn new(nranks: usize, cfg: C3Config) -> Self {
        Job {
            nranks,
            cfg,
            cluster: ClusterModel::ideal(),
            net: NetModel::reliable(),
            sched: SchedMode::default(),
            chaos: ChaosPlan::none(),
            restore: false,
        }
    }

    /// Build from an existing substrate [`JobSpec`] (topology + cluster +
    /// network model + scheduler). Used by the legacy shims and by harnesses
    /// that share one spec between raw-substrate baselines and protocol runs.
    pub fn from_spec(spec: &JobSpec, cfg: C3Config) -> Self {
        Job {
            nranks: spec.nranks,
            cfg,
            cluster: spec.cluster,
            net: spec.net,
            sched: spec.sched,
            chaos: ChaosPlan::none(),
            restore: false,
        }
    }

    /// Set the interconnect timing model.
    pub fn cluster(mut self, c: ClusterModel) -> Self {
        self.cluster = c;
        self
    }

    /// Set the network fault-and-delivery model (reordering, drop,
    /// duplication, seed).
    pub fn network(mut self, n: NetModel) -> Self {
        self.net = n;
        self
    }

    /// Select the clock backing the timer policy and restart-cost stamps.
    pub fn clock(mut self, c: Clock) -> Self {
        self.cfg.clock = c;
        self
    }

    /// Select the checkpoint representation ([`crate::CkptMode`]): full
    /// sections every commit, or base-plus-delta chains.
    pub fn ckpt_mode(mut self, m: crate::CkptMode) -> Self {
        self.cfg.ckpt_mode = m;
        self
    }

    /// Select the rank scheduler (event-driven by default; the
    /// thread-per-rank oracle pins determinism in equivalence suites).
    pub fn sched(mut self, s: SchedMode) -> Self {
        self.sched = s;
        self
    }

    /// Arm an ordered multi-fault chaos plan (fail-stop faults across
    /// incarnations, plus optional network faults).
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Arm a single fail-stop fault (a [`ChaosPlan`] of length 1).
    pub fn failure(mut self, f: FailurePlan) -> Self {
        self.chaos = ChaosPlan::single(f);
        self
    }

    /// Start from the last committed recovery line instead of fresh (the
    /// §6.5 restart-cost measurement). Falls back to a fresh start when the
    /// store holds no committed line.
    pub fn restore(mut self) -> Self {
        self.restore = true;
        self
    }

    /// The job's configuration.
    pub fn config(&self) -> &C3Config {
        &self.cfg
    }

    /// The network model the job will actually run under: the builder's
    /// model with the chaos plan's network-fault entries merged in.
    pub fn effective_net(&self) -> NetModel {
        match self.chaos.net {
            Some(nf) => nf.apply_to(self.net),
            None => self.net,
        }
    }

    /// The substrate spec this job launches with (shared with raw-substrate
    /// baseline runs so both sides see the identical network).
    pub fn spec(&self) -> JobSpec {
        JobSpec {
            nranks: self.nranks,
            cluster: self.cluster,
            net: self.effective_net(),
            sched: self.sched,
        }
    }

    /// One incarnation: launch, wrap every rank in the co-ordination layer
    /// (fresh or restoring), run the application.
    fn attempt<T, F>(
        &self,
        spec: &JobSpec,
        failure: Option<Arc<FailureTrigger>>,
        restore: bool,
        app: &F,
    ) -> Result<JobHandle<T>, JobError>
    where
        T: Send,
        F: Fn(&mut C3Ctx<'_>) -> Result<T, C3Error> + Sync,
    {
        let cfg = &self.cfg;
        mpisim::launch(spec, |mpi| {
            let mut ctx = if restore {
                C3Ctx::restore_or_fresh(mpi, cfg.clone(), failure.clone())
            } else {
                C3Ctx::fresh(mpi, cfg.clone(), failure.clone())
            }
            .map_err(|e| e.into_mpi())?;
            app(&mut ctx).map_err(|e| e.into_mpi())
        })
    }

    /// The recovery line currently committed on *every* rank (0 if none).
    fn committed_line(&self) -> u64 {
        let store = match CkptStore::new(&self.cfg.store_root) {
            Ok(s) => s,
            Err(_) => return 0,
        };
        (0..self.nranks).map(|r| store.last_committed(r).unwrap_or(0)).min().unwrap_or(0)
    }

    /// Run the job to completion, restarting from the last committed
    /// recovery line after every injected death.
    ///
    /// Forward progress is asserted on every restart: an abort is only
    /// accepted when the armed fault actually fired (any other abort
    /// propagates as an error, so a wedged protocol cannot be papered over
    /// by retries), each restart consumes exactly one fault of the plan's
    /// budget, and the committed recovery line never regresses.
    pub fn run<T, F>(&self, app: F) -> Result<RecoveredJob<T>, JobError>
    where
        T: Send,
        F: Fn(&mut C3Ctx<'_>) -> Result<T, C3Error> + Sync,
    {
        let spec = self.spec();
        let mut restarts = 0u32;
        let mut restore = self.restore;
        let mut fault_idx = 0usize;
        let mut lines = Vec::new();
        loop {
            let trigger =
                self.chaos.faults.get(fault_idx).map(|f| Arc::new(FailureTrigger::new(*f)));
            match self.attempt(&spec, trigger, restore, &app) {
                Ok(handle) => {
                    return Ok(RecoveredJob {
                        handle,
                        restarts,
                        faults_fired: fault_idx as u32,
                        lines,
                    })
                }
                Err(JobError::Aborted { reason }) => {
                    // Only a death we injected ourselves justifies a restart.
                    if !reason.contains(INJECTED_FAULT_MARKER) {
                        return Err(JobError::Aborted { reason });
                    }
                    // Forward-progress invariants surface as errors, not
                    // panics, so a soak harness can record and shrink exactly
                    // this failure class instead of losing the whole sweep.
                    if fault_idx >= self.chaos.faults.len() {
                        return Err(JobError::Aborted {
                            reason: format!(
                                "chaos driver invariant violated: abort marked as injected \
                                 but the plan is exhausted ({reason})"
                            ),
                        });
                    }
                    let line = self.committed_line();
                    if lines.last().is_some_and(|prev| line < *prev) {
                        return Err(JobError::Aborted {
                            reason: format!(
                                "chaos driver invariant violated: committed recovery line \
                                 regressed to {line} after {lines:?}"
                            ),
                        });
                    }
                    lines.push(line);
                    fault_idx += 1;
                    restarts += 1;
                    restore = true;
                }
                Err(other) => return Err(other),
            }
        }
    }
}
