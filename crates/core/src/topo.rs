//! Cartesian process topologies (the "topologies" part of §4.4).
//!
//! `MPI_Cart_create` and friends, built on the communicator table: the grid
//! communicator is carved out of the parent with [`C3Ctx::comm_split`]
//! (whose recipe is recorded and checkpointed), and the topology itself —
//! dimensions, periodicity, the rank↔coordinate maps — is pure arithmetic
//! over the grid communicator's local ranks, so it needs no extra recovery
//! machinery: the application re-derives it from data it saves like any
//! other state (or simply recreates it, since creation is deterministic).

use crate::api::C3Error;
use crate::comms::C3Comm;
use crate::C3Ctx;
use crate::Result;

/// A Cartesian view of a communicator (row-major rank order, like MPI).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CartTopo {
    /// The grid communicator (exactly `dims.iter().product()` members).
    pub comm: C3Comm,
    /// Extent of each dimension.
    pub dims: Vec<usize>,
    /// Per-dimension periodicity.
    pub periodic: Vec<bool>,
}

impl CartTopo {
    /// Total grid size.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of grid rank `rank` (row-major: the last dimension varies
    /// fastest).
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        let mut rest = rank;
        let mut coords = vec![0; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rest % d;
            rest /= d;
        }
        coords
    }

    /// Grid rank of `coords` (inverse of [`Self::coords_of`]).
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        let mut rank = 0;
        for (i, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[i]);
            rank = rank * self.dims[i] + c;
        }
        rank
    }

    /// `MPI_Cart_shift` from the position of grid rank `me`: the grid ranks
    /// of the source (displacement `-disp`) and destination (`+disp`)
    /// neighbours along `dim`, `None` at a non-periodic boundary.
    pub fn shift(&self, me: usize, dim: usize, disp: i64) -> (Option<usize>, Option<usize>) {
        let step = |origin: i64, delta: i64| -> Option<usize> {
            let d = self.dims[dim] as i64;
            let target = origin + delta;
            if self.periodic[dim] {
                Some(target.rem_euclid(d) as usize)
            } else if (0..d).contains(&target) {
                Some(target as usize)
            } else {
                None
            }
        };
        let mut coords = self.coords_of(me);
        let origin = coords[dim] as i64;
        let mk = |c: Option<usize>, coords: &mut Vec<usize>| {
            c.map(|ci| {
                coords[dim] = ci;
                self.rank_of(coords)
            })
        };
        let src = mk(step(origin, -disp), &mut coords);
        coords = self.coords_of(me);
        let dst = mk(step(origin, disp), &mut coords);
        (src, dst)
    }
}

impl<'a> C3Ctx<'a> {
    /// `MPI_Cart_create`: carve a `dims` grid out of `parent`. Members of
    /// `parent` with local rank below the grid size join (in parent-rank
    /// order, row-major); the rest get `None` (MPI_COMM_NULL). Collective
    /// over `parent`.
    pub fn cart_create(
        &mut self,
        parent: C3Comm,
        dims: &[usize],
        periodic: &[bool],
    ) -> Result<Option<CartTopo>> {
        if dims.is_empty() || dims.len() != periodic.len() {
            return Err(C3Error::Protocol(
                "cart_create needs matching, non-empty dims and periodic".into(),
            ));
        }
        let grid: usize = dims.iter().product();
        let psize = self.comm_size(parent)?;
        if grid == 0 || grid > psize {
            return Err(C3Error::Protocol(format!(
                "cart_create: grid of {grid} does not fit communicator of {psize}"
            )));
        }
        let my_local = self
            .comm_rank(parent)?
            .ok_or_else(|| C3Error::Protocol("cart_create caller must be a member".into()))?;
        let color = if my_local < grid { Some(0) } else { None };
        let sub = self.comm_split(parent, color, my_local as i64)?;
        Ok(sub.map(|comm| CartTopo { comm, dims: dims.to_vec(), periodic: periodic.to_vec() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(dims: &[usize], periodic: &[bool]) -> CartTopo {
        CartTopo { comm: C3Comm(1), dims: dims.to_vec(), periodic: periodic.to_vec() }
    }

    #[test]
    fn coords_roundtrip_row_major() {
        let t = topo(&[2, 3, 4], &[false, false, false]);
        for r in 0..t.size() {
            assert_eq!(t.rank_of(&t.coords_of(r)), r);
        }
        // Row-major: the last dimension varies fastest.
        assert_eq!(t.coords_of(0), vec![0, 0, 0]);
        assert_eq!(t.coords_of(1), vec![0, 0, 1]);
        assert_eq!(t.coords_of(4), vec![0, 1, 0]);
        assert_eq!(t.coords_of(12), vec![1, 0, 0]);
    }

    #[test]
    fn shift_respects_boundaries() {
        let t = topo(&[3, 3], &[false, true]);
        // Rank 0 = (0,0). Dim 0 non-periodic: no source above.
        let (src, dst) = t.shift(0, 0, 1);
        assert_eq!(src, None);
        assert_eq!(dst, Some(t.rank_of(&[1, 0])));
        // Dim 1 periodic: wraps.
        let (src, dst) = t.shift(0, 1, 1);
        assert_eq!(src, Some(t.rank_of(&[0, 2])));
        assert_eq!(dst, Some(t.rank_of(&[0, 1])));
    }

    #[test]
    fn shift_by_negative_and_large_displacements() {
        let t = topo(&[4], &[true]);
        let (src, dst) = t.shift(1, 0, -1);
        assert_eq!((src, dst), (Some(2), Some(0)));
        let (src, dst) = t.shift(1, 0, 5); // 5 ≡ 1 (mod 4)
        assert_eq!((src, dst), (Some(0), Some(2)));
    }
}
