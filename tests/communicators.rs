//! The §4.4 extension: communicators and groups. Creation is recorded in an
//! indirection table saved with every checkpoint; derived-communicator
//! traffic (p2p and collectives) runs through the same protocol streams as
//! world traffic, so recovery replays and suppresses it identically.

mod util;

use c3::{C3Comm, C3Config, C3Ctx, C3Error, FailAt, FailurePlan};
use mpisim::ReduceOp;
use statesave::codec::{Decoder, Encoder};
use util::TempStore;

#[test]
fn split_partitions_and_orders_by_key() {
    let store = TempStore::new("split");
    let out = c3::Job::new(6, C3Config::passive(store.path()))
        .run(|ctx| {
            let world = ctx.comm_world();
            // Even/odd split; keys reverse the world order inside each half.
            let color = (ctx.rank() % 2) as i64;
            let key = -(ctx.rank() as i64);
            let sub = ctx.comm_split(world, Some(color), key)?.expect("member");
            let size = ctx.comm_size(sub)?;
            let local = ctx.comm_rank(sub)?.expect("member rank");
            Ok((size, local))
        })
        .unwrap();
    for (world_rank, (size, local)) in out.results.iter().enumerate() {
        assert_eq!(*size, 3, "rank {world_rank}");
        // Keys are negative world ranks, so local order is reversed: world
        // rank 0 (key 0) is the *last* of the evens, world 4 the first.
        let expected = match world_rank {
            0 => 2,
            2 => 1,
            4 => 0,
            1 => 2,
            3 => 1,
            5 => 0,
            _ => unreachable!(),
        };
        assert_eq!(*local, expected, "world rank {world_rank}");
    }
}

#[test]
fn undefined_color_yields_none_but_participates() {
    let store = TempStore::new("undef");
    let out = c3::Job::new(4, C3Config::passive(store.path()))
        .run(|ctx| {
            let world = ctx.comm_world();
            let color = if ctx.rank() < 2 { Some(0) } else { None };
            let sub = ctx.comm_split(world, color, 0)?;
            Ok(sub.is_some())
        })
        .unwrap();
    assert_eq!(out.results, vec![true, true, false, false]);
}

#[test]
fn subgroup_collectives_and_p2p() {
    let store = TempStore::new("coll");
    let out = c3::Job::new(6, C3Config::passive(store.path()))
        .run(|ctx| {
            let world = ctx.comm_world();
            let color = (ctx.rank() / 3) as i64; // {0,1,2} and {3,4,5}
            let sub = ctx.comm_split(world, Some(color), 0)?.expect("member");
            let local = ctx.comm_rank(sub)?.unwrap();

            // Allreduce of world ranks inside the subgroup.
            let sum = ctx.allreduce_on(
                sub,
                &(ctx.rank() as u64).to_le_bytes(),
                mpisim::BasicType::U64,
                &ReduceOp::Sum,
            )?;
            let sum = u64::from_le_bytes(sum[..8].try_into().unwrap());

            // Bcast from subgroup root.
            let mut data = if local == 0 { vec![color as u8 + 10] } else { Vec::new() };
            ctx.bcast_on(sub, 0, &mut data)?;

            // Ring p2p inside the subgroup (local ranks).
            let n = ctx.comm_size(sub)?;
            ctx.send_on(sub, (local + 1) % n, 5, &[local as u8])?;
            let (got, st) = ctx.recv_on(sub, ((local + n - 1) % n) as i32, 5)?;
            assert_eq!(st.src, (local + n - 1) % n, "status carries the local rank");

            Ok((sum, data[0], got[0]))
        })
        .unwrap();
    for (world_rank, (sum, b, got)) in out.results.iter().enumerate() {
        let expected_sum: u64 = if world_rank < 3 { 1 + 2 } else { 3 + 4 + 5 };
        assert_eq!(*sum, expected_sum, "rank {world_rank}");
        assert_eq!(*b, if world_rank < 3 { 10 } else { 11 });
        let local = world_rank % 3;
        assert_eq!(*got as usize, (local + 2) % 3);
    }
}

#[test]
fn same_tag_different_comms_do_not_cross() {
    // Two sibling split communicators with overlapping tags: a message sent
    // on one must never match a receive on the other, even with identical
    // (world-src, tag) pairs — the derived wire ids separate them.
    let store = TempStore::new("cross");
    let out = c3::Job::new(2, C3Config::passive(store.path()))
        .run(|ctx| {
            let world = ctx.comm_world();
            let a = ctx.comm_split(world, Some(0), 0)?.unwrap();
            let b = ctx.comm_dup(a)?;
            if ctx.rank() == 0 {
                ctx.send_on(a, 1, 9, &[1u8])?;
                ctx.send_on(b, 1, 9, &[2u8])?;
                Ok(0)
            } else {
                // Receive in the *opposite* order of sending: comm separation,
                // not arrival order, must route these.
                let (vb, _) = ctx.recv_on(b, 0, 9)?;
                let (va, _) = ctx.recv_on(a, 0, 9)?;
                assert_eq!((va[0], vb[0]), (1, 2));
                Ok(1)
            }
        })
        .unwrap();
    assert_eq!(out.results, vec![0, 1]);
}

#[test]
fn comm_free_rejects_reuse_and_double_free() {
    let store = TempStore::new("free");
    c3::Job::new(2, C3Config::passive(store.path()))
        .run(|ctx| {
            let world = ctx.comm_world();
            let sub = ctx.comm_dup(world)?;
            ctx.comm_free(sub)?;
            assert!(ctx.comm_free(sub).is_err(), "double free must fail");
            assert!(ctx.barrier_on(sub).is_err(), "use after free must fail");
            assert!(ctx.comm_free(ctx.comm_world()).is_err(), "world is not freeable");
            Ok(())
        })
        .unwrap();
}

/// The paper's requirement: communicator structures are part of the
/// checkpoint and recovery rebuilds them. A job splits the world, works on
/// the halves, checkpoints, fails, recovers, and keeps using the restored
/// communicator handle — result equals the failure-free run.
#[test]
fn derived_comms_survive_failure_and_recovery() {
    fn app(ctx: &mut C3Ctx<'_>) -> Result<u64, C3Error> {
        let world = ctx.comm_world();
        // State: iteration + checksum + the communicator handle id. The
        // handle is restored from the comms checkpoint section; the id is
        // saved app-side like any other variable.
        let (mut iter, mut acc, sub) = match ctx.take_restored_state() {
            Some(b) => {
                let mut d = Decoder::new(&b);
                (d.u64()?, d.u64()?, C3Comm(d.u64()?))
            }
            None => {
                let color = (ctx.rank() % 2) as i64;
                let sub = ctx.comm_split(world, Some(color), 0)?.expect("member");
                (0, 0, sub)
            }
        };
        let local = ctx.comm_rank(sub)?.expect("restored membership");
        let n = ctx.comm_size(sub)?;
        while iter < 10 {
            ctx.pragma(|e: &mut Encoder| {
                e.u64(iter);
                e.u64(acc);
                e.u64(sub.0);
            })?;
            // Subgroup ring + subgroup reduction each iteration.
            ctx.send_on(sub, (local + 1) % n, 3, &(iter * 7 + local as u64).to_le_bytes())?;
            let (v, _) = ctx.recv_on(sub, ((local + n - 1) % n) as i32, 3)?;
            let s = ctx.allreduce_on(sub, &v[..8], mpisim::BasicType::U64, &ReduceOp::Sum)?;
            acc = acc
                .wrapping_mul(0x100000001b3)
                .wrapping_add(u64::from_le_bytes(s[..8].try_into().unwrap()));
            // World coupling each iteration (as every real kernel has): it
            // keeps all ranks advancing together so the checkpoint
            // coordination completes while the loop is still running.
            let world_sum = ctx.allreduce_u64(iter, &ReduceOp::Sum)?;
            acc = acc.wrapping_add(world_sum);
            iter += 1;
        }
        Ok(acc)
    }

    let base_store = TempStore::new("rec-base");
    let baseline = c3::Job::new(4, C3Config::passive(base_store.path())).run(app).unwrap();

    let store = TempStore::new("rec-fail");
    let cfg = C3Config::at_pragmas(store.path(), vec![4]);
    let plan = FailurePlan { rank: 3, when: FailAt::AfterCommits { commits: 1, pragma: 7 } };
    let rec = c3::Job::new(4, cfg).failure(plan).run(app).unwrap();
    assert!(rec.restarts >= 1);
    assert_eq!(rec.handle.results, baseline.results);
}

/// Nested derivation: split a split, with traffic on all three levels.
#[test]
fn nested_splits() {
    let store = TempStore::new("nest");
    let out = c3::Job::new(8, C3Config::passive(store.path()))
        .run(|ctx| {
            let world = ctx.comm_world();
            let half = ctx.comm_split(world, Some((ctx.rank() / 4) as i64), 0)?.unwrap();
            let quarter =
                ctx.comm_split(half, Some((ctx.comm_rank(half)?.unwrap() / 2) as i64), 0)?.unwrap();
            assert_eq!(ctx.comm_size(quarter)?, 2);
            let s = ctx.allreduce_on(
                quarter,
                &(ctx.rank() as u64).to_le_bytes(),
                mpisim::BasicType::U64,
                &ReduceOp::Sum,
            )?;
            Ok(u64::from_le_bytes(s[..8].try_into().unwrap()))
        })
        .unwrap();
    // Quarters are {0,1},{2,3},{4,5},{6,7}: sums 1,1,5,5,9,9,13,13.
    assert_eq!(out.results, vec![1, 1, 5, 5, 9, 9, 13, 13]);
}

/// A 2D Cartesian topology (§4.4 "topologies"): halo exchange over cart
/// shifts, checkpointed and recovered.
#[test]
fn cart_topology_halo_exchange_recovers() {
    fn app(ctx: &mut C3Ctx<'_>) -> Result<u64, C3Error> {
        let world = ctx.comm_world();
        let (mut iter, mut val, topo) = match ctx.take_restored_state() {
            Some(b) => {
                let mut d = Decoder::new(&b);
                let iter = d.u64()?;
                let val = d.u64()?;
                let comm = C3Comm(d.u64()?);
                // The topology is pure data over the recorded communicator.
                (iter, val, c3::CartTopo { comm, dims: vec![2, 2], periodic: vec![true, true] })
            }
            None => {
                let topo = ctx.cart_create(world, &[2, 2], &[true, true])?.expect("fits");
                (0, ctx.rank() as u64, topo)
            }
        };
        let me = ctx.comm_rank(topo.comm)?.expect("grid member");
        while iter < 8 {
            ctx.pragma(|e: &mut Encoder| {
                e.u64(iter);
                e.u64(val);
                e.u64(topo.comm.0);
            })?;
            // Shift along alternating dimensions each iteration.
            let dim = (iter % 2) as usize;
            let (src, dst) = topo.shift(me, dim, 1);
            let (src, dst) = (src.unwrap(), dst.unwrap()); // periodic: always Some
            ctx.send_on(topo.comm, dst, 4, &val.to_le_bytes())?;
            let (v, _) = ctx.recv_on(topo.comm, src as i32, 4)?;
            val = val.wrapping_mul(31).wrapping_add(u64::from_le_bytes(v[..8].try_into().unwrap()));
            // World coupling so checkpoint coordination completes in-loop.
            let _ = ctx.allreduce_u64(val, &ReduceOp::Max)?;
            iter += 1;
        }
        Ok(val)
    }

    let base_store = TempStore::new("cart-base");
    let baseline = c3::Job::new(4, C3Config::passive(base_store.path())).run(app).unwrap();
    let store = TempStore::new("cart-fail");
    let cfg = C3Config::at_pragmas(store.path(), vec![3]);
    let plan = FailurePlan { rank: 2, when: FailAt::AfterCommits { commits: 1, pragma: 6 } };
    let rec = c3::Job::new(4, cfg).failure(plan).run(app).unwrap();
    assert!(rec.restarts >= 1);
    assert_eq!(rec.handle.results, baseline.results);
}
