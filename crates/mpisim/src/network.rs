//! The shared network: delivery, cluster timing models, reordering, and
//! job poisoning (fail-stop propagation).

use crate::envelope::Envelope;
use crate::mailbox::Mailbox;
use crate::payload::BufferPool;
use crate::Rank;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual-time cost model of an interconnect, in the style of the paper's
/// evaluation platforms (§6). Costs feed the per-rank virtual clocks, not
/// wall-clock sleeps, so simulations stay fast while still exposing the
/// platform-dependent *shape* of communication cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterModel {
    /// Human-readable platform name (shows up in reports).
    pub name: &'static str,
    /// One-way message latency in nanoseconds.
    pub latency_ns: u64,
    /// Bandwidth in bytes per microsecond (i.e. MB/s).
    pub bytes_per_us: u64,
    /// Per-message CPU cost at the sender in nanoseconds (injection
    /// overhead).
    pub send_overhead_ns: u64,
}

impl ClusterModel {
    /// Lemieux (PSC): Alphaserver ES45 nodes, Quadrics interconnect.
    pub fn lemieux() -> Self {
        ClusterModel { name: "Lemieux", latency_ns: 5_000, bytes_per_us: 250, send_overhead_ns: 900 }
    }

    /// Velocity 2 (CTC): Pentium 4 Xeon nodes, Force10 Gigabit Ethernet.
    pub fn velocity2() -> Self {
        ClusterModel { name: "Velocity2", latency_ns: 60_000, bytes_per_us: 100, send_overhead_ns: 4_000 }
    }

    /// CMI (CTC): Pentium 3 nodes, Giganet switch.
    pub fn cmi() -> Self {
        ClusterModel { name: "CMI", latency_ns: 40_000, bytes_per_us: 100, send_overhead_ns: 3_000 }
    }

    /// An idealized zero-cost network (useful in unit tests).
    pub fn ideal() -> Self {
        ClusterModel { name: "ideal", latency_ns: 0, bytes_per_us: u64::MAX, send_overhead_ns: 0 }
    }

    /// Virtual transfer time for a payload of `bytes`.
    #[inline]
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        if self.bytes_per_us == u64::MAX {
            return 0;
        }
        self.latency_ns + (bytes as u64 * 1_000) / self.bytes_per_us
    }
}

/// Cross-signature message reordering model.
///
/// MPI guarantees FIFO only per signature; real networks and MPI libraries
/// deliver messages with *different* signatures out of order. The reordering
/// model makes that happen deterministically (seeded), while never violating
/// per-signature FIFO: an envelope is only held back if no held envelope
/// shares its signature, and held envelopes are flushed before any
/// same-signature successor is delivered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReorderModel {
    /// Deliver in send order.
    None,
    /// Hold back each envelope with probability `hold_permille`/1000, up to
    /// `max_held` concurrently held per destination; each later delivery
    /// flushes held envelopes with probability 1/2 each.
    Random {
        /// Hold-back probability in permille (0..=1000).
        hold_permille: u32,
        /// Maximum number of envelopes held per destination.
        max_held: usize,
    },
}

#[derive(Default)]
struct ReorderState {
    held: Vec<Envelope>,
    rng: Option<SmallRng>,
}

/// The shared fabric connecting all ranks of a job.
pub struct Network {
    mailboxes: Vec<Mailbox>,
    cluster: ClusterModel,
    reorder: ReorderModel,
    reorder_state: Vec<Mutex<ReorderState>>,
    poisoned: AtomicBool,
    poison_reason: Mutex<Option<String>>,
    /// The world's shared send-buffer pool (see [`BufferPool`]).
    pool: Arc<BufferPool>,
    /// Total application messages injected (diagnostics).
    pub msgs_sent: AtomicU64,
    /// Total application bytes injected (diagnostics).
    pub bytes_sent: AtomicU64,
}

impl Network {
    /// Create a network for `nranks` ranks.
    pub fn new(nranks: usize, cluster: ClusterModel, reorder: ReorderModel, seed: u64) -> Self {
        let reorder_state = (0..nranks)
            .map(|dst| {
                Mutex::new(ReorderState {
                    held: Vec::new(),
                    rng: match reorder {
                        ReorderModel::None => None,
                        ReorderModel::Random { .. } => {
                            Some(SmallRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(dst as u64 + 1))))
                        }
                    },
                })
            })
            .collect();
        Network {
            mailboxes: (0..nranks).map(|_| Mailbox::new()).collect(),
            cluster,
            reorder,
            reorder_state,
            poisoned: AtomicBool::new(false),
            poison_reason: Mutex::new(None),
            pool: BufferPool::new(),
            msgs_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.mailboxes.len()
    }

    /// The cluster timing model.
    pub fn cluster(&self) -> &ClusterModel {
        &self.cluster
    }

    /// The mailbox of `rank`.
    pub fn mailbox(&self, rank: Rank) -> &Mailbox {
        &self.mailboxes[rank]
    }

    /// The world's shared send-buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Inject an envelope. Applies the reordering model, then delivers to the
    /// destination mailbox.
    pub fn send(&self, env: Envelope) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(env.payload.len() as u64, Ordering::Relaxed);
        let dst = env.dst;
        match self.reorder {
            ReorderModel::None => self.mailboxes[dst].deliver(env),
            ReorderModel::Random { hold_permille, max_held } => {
                // Deliveries happen while the per-destination reorder lock
                // is held: releasing first would let a concurrent sender
                // overtake an envelope already removed from `held` but not
                // yet in the mailbox, breaking per-signature FIFO.
                let mut st = self.reorder_state[dst].lock();
                let sig = env.signature();
                // Per-signature FIFO: flush any held envelope with the
                // same signature before this one may be delivered or
                // held.
                let mut i = 0;
                while i < st.held.len() {
                    if st.held[i].signature() == sig {
                        let e = st.held.remove(i);
                        self.mailboxes[dst].deliver(e);
                    } else {
                        i += 1;
                    }
                }
                let hold = {
                    let room = st.held.len() < max_held;
                    let rng = st.rng.as_mut().expect("rng present for Random model");
                    room && rng.gen_range(0..1000) < hold_permille
                };
                if hold {
                    st.held.push(env);
                } else {
                    self.mailboxes[dst].deliver(env);
                    // Flush each held envelope with probability 1/2.
                    let mut i = 0;
                    while i < st.held.len() {
                        let flush = st.rng.as_mut().unwrap().gen_bool(0.5);
                        if flush {
                            let e = st.held.remove(i);
                            self.mailboxes[dst].deliver(e);
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
    }

    /// Flush envelopes held by the reordering model for `dst`. Called by a
    /// rank's blocked wait loops so that held messages are eventually
    /// delivered even if no further traffic arrives (models "in flight, but
    /// not lost").
    pub fn nudge(&self, dst: Rank) {
        if matches!(self.reorder, ReorderModel::None) {
            return;
        }
        let mut st = self.reorder_state[dst].lock();
        for e in st.held.drain(..) {
            self.mailboxes[dst].deliver(e);
        }
    }

    /// Flush every held envelope (used at teardown / quiescence points so no
    /// message is lost to the reorder buffer).
    pub fn flush_reorder(&self) {
        for (dst, st) in self.reorder_state.iter().enumerate() {
            let mut st = st.lock();
            for e in st.held.drain(..) {
                self.mailboxes[dst].deliver(e);
            }
        }
    }

    /// Poison the job: every blocked/future operation returns `Aborted`.
    /// Models a fail-stop hardware failure (§1 footnote 1).
    pub fn poison(&self, reason: &str) {
        if !self.poisoned.swap(true, Ordering::SeqCst) {
            *self.poison_reason.lock() = Some(reason.to_string());
        }
        for mb in &self.mailboxes {
            mb.interrupt();
        }
    }

    /// Has the job been poisoned?
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Why the job was poisoned, if it was.
    pub fn poison_reason(&self) -> Option<String> {
        self.poison_reason.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{COMM_WORLD, Tag};

    fn env(src: Rank, dst: Rank, tag: Tag, seq: u64) -> Envelope {
        Envelope {
            src,
            dst,
            tag,
            comm: COMM_WORLD,
            seq,
            piggyback: 0,
            depart_vt: 0,
            payload: crate::payload::Payload::empty(),
        }
    }

    #[test]
    fn plain_delivery() {
        let net = Network::new(2, ClusterModel::ideal(), ReorderModel::None, 1);
        net.send(env(0, 1, 3, 0));
        assert_eq!(net.mailbox(1).len(), 1);
        assert_eq!(net.mailbox(0).len(), 0);
    }

    #[test]
    fn reorder_preserves_per_signature_fifo() {
        let net = Network::new(
            2,
            ClusterModel::ideal(),
            ReorderModel::Random { hold_permille: 500, max_held: 8 },
            42,
        );
        // Send 200 messages on the SAME signature; they must arrive in order.
        for seq in 0..200 {
            net.send(env(0, 1, 7, seq));
        }
        net.flush_reorder();
        let mut last = None;
        while let Some(e) = net.mailbox(1).try_claim(0, 7, COMM_WORLD) {
            if let Some(prev) = last {
                assert!(e.seq > prev, "per-signature FIFO violated: {} after {}", e.seq, prev);
            }
            last = Some(e.seq);
        }
        assert_eq!(last, Some(199));
    }

    #[test]
    fn reorder_actually_reorders_across_signatures() {
        let net = Network::new(
            2,
            ClusterModel::ideal(),
            ReorderModel::Random { hold_permille: 700, max_held: 8 },
            7,
        );
        // Alternate two signatures; with high hold probability some tag-1
        // message should arrive after a later-sent tag-2 message.
        for i in 0..100u64 {
            net.send(env(0, 1, (i % 2) as Tag, i / 2));
        }
        net.flush_reorder();
        let arrivals: Vec<(Tag, u64)> = net
            .mailbox(1)
            .lock()
            .snapshot_arrival_order()
            .iter()
            .map(|e| (e.tag, e.seq))
            .collect();
        assert_eq!(arrivals.len(), 100);
        // Detect at least one cross-signature inversion vs. global send
        // order (tag alternation means global order is (0,k),(1,k),(0,k+1)..).
        let global = |t: Tag, s: u64| s * 2 + t as u64;
        let inverted = arrivals.windows(2).any(|w| global(w[0].0, w[0].1) > global(w[1].0, w[1].1));
        assert!(inverted, "expected at least one cross-signature reorder");
    }

    #[test]
    fn poison_is_sticky_and_carries_reason() {
        let net = Network::new(1, ClusterModel::ideal(), ReorderModel::None, 1);
        assert!(!net.is_poisoned());
        net.poison("rank 0 killed by fault injector");
        net.poison("second reason ignored");
        assert!(net.is_poisoned());
        assert_eq!(net.poison_reason().unwrap(), "rank 0 killed by fault injector");
    }

    #[test]
    fn cluster_transfer_costs() {
        let lx = ClusterModel::lemieux();
        assert_eq!(lx.transfer_ns(0), 5_000);
        // 250 MB/s = 250 bytes/us: 25_000 bytes take 100 us.
        assert_eq!(lx.transfer_ns(25_000), 5_000 + 100_000);
        assert_eq!(ClusterModel::ideal().transfer_ns(1 << 20), 0);
    }
}
