//! Table 4 — overhead with one mid-run checkpoint (Lemieux model, §6.4):
//! configuration #1 (no checkpoint), #2 (checkpoint, no disk), #3
//! (checkpoint to local disk), plus checkpoint size per process, checkpoint
//! cost (#3 - #1), and the Checkpoint-Initiated control message count (the
//! §4.5 scalability measure). Pass `--scale` to append the §6.4 hourly /
//! daily projection.

use c3_bench::{paper, tables};
use mpisim::ClusterModel;

fn main() {
    let t = tables::with_ckpt_table(
        "Table 4 — runtimes with checkpoints (Lemieux model, 4 ranks)",
        |_| ClusterModel::lemieux(),
        4,
        paper::TABLE4_LEMIEUX_64,
    );
    t.print();
    if std::env::args().any(|a| a == "--scale") {
        tables::scaling_table(4).print();
    }
}
