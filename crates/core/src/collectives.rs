//! Protocol-wrapped collective communication (§4.3).
//!
//! "The approach we take is... to apply the base protocol to the start and
//! end points of each individual communication stream within a collective
//! operation." Every collective below is decomposed into its *logical
//! streams* and each stream goes through `stream_send` / `stream_recv_coll`,
//! which apply the full protocol: piggyback classification, counters,
//! late-data logging, early recording, and — during recovery — replay from
//! the log and suppression of early re-sends. Because normal operation and
//! recovery use the same stream topology, ranks that have already finished
//! recovery interoperate with ranks still replaying, with no switch-over
//! protocol.
//!
//! Stream topologies (the logical data-flow of each operation):
//!
//! * `bcast`, `scatter`: root → every other rank;
//! * `gather`, `reduce`: every other rank → root (reduce is "first send all
//!   data to the root using an independent gather and then perform the
//!   actual reduction" — the paper's exact treatment of `MPI_Reduce`);
//! * `allgather`, `allreduce`, `barrier`, `alltoall`: all ↔ all;
//! * `scan`: every rank j → every rank i > j (the prefix dependency chain).
//!
//! Deterministic rank-order folding makes reduction results reproducible
//! across re-execution, which the replay correctness argument requires.

use crate::api::C3Ctx;
use crate::registries::StreamKind;
use crate::Result;
use mpisim::{fold_into, BasicType, Payload, ReduceOp, COMM_WORLD};

impl<'a> C3Ctx<'a> {
    /// Take the next deterministic collective-instance number on the world
    /// communicator.
    fn next_call(&mut self) -> u64 {
        let c = self.coll_calls;
        self.coll_calls += 1;
        c
    }

    /// One pooled copy of `bytes`, shared by reference across a fan-out.
    pub(crate) fn shared_payload(&self, bytes: &[u8]) -> Payload {
        self.mpi.network().pool().payload_from(bytes)
    }

    /// Broadcast `data` from `root` to every rank. The root's fan-out shares
    /// a single buffer across all destinations.
    pub fn bcast(&mut self, root: usize, data: &mut Vec<u8>) -> Result<()> {
        let call = self.next_call();
        let me = self.rank();
        let n = self.nranks();
        if me == root {
            // Ownership transfer into a shared payload: no copy, one buffer
            // for all n-1 envelopes; the root's copy is restored from the
            // same buffer afterwards (in place when nothing is still in
            // flight).
            let payload = Payload::from_vec(std::mem::take(data));
            for dst in 0..n {
                if dst != root {
                    self.stream_send_payload(
                        dst,
                        COMM_WORLD.0,
                        StreamKind::Coll { call },
                        payload.clone(),
                    )?;
                }
            }
            *data = payload.into_vec();
        } else {
            *data = self.stream_recv_coll(root, COMM_WORLD.0, call)?;
        }
        Ok(())
    }

    /// Gather every rank's buffer at `root` (rank-ordered; sizes may vary).
    pub fn gather(&mut self, root: usize, mine: &[u8]) -> Result<Option<Vec<Vec<u8>>>> {
        let call = self.next_call();
        let me = self.rank();
        let n = self.nranks();
        if me == root {
            let mut out = Vec::with_capacity(n);
            for src in 0..n {
                if src == me {
                    out.push(mine.to_vec());
                } else {
                    out.push(self.stream_recv_coll(src, COMM_WORLD.0, call)?);
                }
            }
            Ok(Some(out))
        } else {
            self.stream_send(root, COMM_WORLD.0, StreamKind::Coll { call }, mine)?;
            Ok(None)
        }
    }

    /// Scatter per-rank buffers from `root`.
    pub fn scatter(&mut self, root: usize, parts: Option<&[Vec<u8>]>) -> Result<Vec<u8>> {
        let call = self.next_call();
        let me = self.rank();
        let n = self.nranks();
        if me == root {
            let parts = parts.ok_or_else(|| {
                crate::api::C3Error::Protocol("scatter root must supply parts".into())
            })?;
            if parts.len() != n {
                return Err(crate::api::C3Error::Protocol(format!(
                    "scatter needs {n} parts, got {}",
                    parts.len()
                )));
            }
            for (dst, part) in parts.iter().enumerate() {
                if dst != me {
                    self.stream_send(dst, COMM_WORLD.0, StreamKind::Coll { call }, part)?;
                }
            }
            Ok(parts[me].clone())
        } else {
            self.stream_recv_coll(root, COMM_WORLD.0, call)
        }
    }

    /// All-gather: every rank receives every rank's buffer (rank-ordered).
    /// The contribution is copied once into a shared payload; the fan-out
    /// and the self-slot all reference that one buffer.
    pub fn allgather(&mut self, mine: &[u8]) -> Result<Vec<Vec<u8>>> {
        let call = self.next_call();
        let me = self.rank();
        let n = self.nranks();
        let payload = self.shared_payload(mine);
        for dst in 0..n {
            if dst != me {
                self.stream_send_payload(
                    dst,
                    COMM_WORLD.0,
                    StreamKind::Coll { call },
                    payload.clone(),
                )?;
            }
        }
        let mut out = Vec::with_capacity(n);
        for src in 0..n {
            if src == me {
                out.push(payload.clone().into_vec());
            } else {
                out.push(self.stream_recv_coll(src, COMM_WORLD.0, call)?);
            }
        }
        Ok(out)
    }

    /// Barrier: an all-gather of empty payloads; returns when every rank has
    /// entered.
    pub fn barrier(&mut self) -> Result<()> {
        self.allgather(&[]).map(|_| ())
    }

    /// All-to-all personalized exchange: `parts[i]` goes to rank `i`.
    pub fn alltoall(&mut self, parts: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let n = self.nranks();
        if parts.len() != n {
            return Err(crate::api::C3Error::Protocol(format!(
                "alltoall needs {n} parts, got {}",
                parts.len()
            )));
        }
        let call = self.next_call();
        let me = self.rank();
        for (dst, part) in parts.iter().enumerate() {
            if dst != me {
                self.stream_send(dst, COMM_WORLD.0, StreamKind::Coll { call }, part)?;
            }
        }
        let mut out = Vec::with_capacity(n);
        for src in 0..n {
            if src == me {
                out.push(parts[me].clone());
            } else {
                out.push(self.stream_recv_coll(src, COMM_WORLD.0, call)?);
            }
        }
        Ok(out)
    }

    /// Reduce to `root`: gather + root-side fold in rank order — the paper's
    /// own construction for `MPI_Reduce` ("we first send all data to the
    /// root node of the reduction using an independent MPI_Gather and then
    /// perform the actual reduction"), which gives the protocol the
    /// individual messages it needs for correct replay.
    pub fn reduce(
        &mut self,
        root: usize,
        data: &[u8],
        ty: BasicType,
        op: &ReduceOp,
    ) -> Result<Option<Vec<u8>>> {
        match self.gather(root, data)? {
            None => Ok(None),
            Some(parts) => {
                let mut parts = parts.into_iter();
                let mut acc = parts.next().expect("gather at root is nonempty");
                for p in parts {
                    fold_into(op, &mut acc, &p, ty).map_err(crate::api::C3Error::Mpi)?;
                }
                Ok(Some(acc))
            }
        }
    }

    /// All-reduce: all-to-all streams, every rank folds in rank order. The
    /// fold is seeded by ownership transfer of the first contribution — no
    /// clone.
    pub fn allreduce(&mut self, data: &[u8], ty: BasicType, op: &ReduceOp) -> Result<Vec<u8>> {
        let mut parts = self.allgather(data)?.into_iter();
        let mut acc = parts.next().expect("allgather is nonempty");
        for p in parts {
            fold_into(op, &mut acc, &p, ty).map_err(crate::api::C3Error::Mpi)?;
        }
        Ok(acc)
    }

    /// Typed all-reduce convenience for one `f64`.
    pub fn allreduce_f64(&mut self, x: f64, op: &ReduceOp) -> Result<f64> {
        let out = self.allreduce(&x.to_le_bytes(), BasicType::F64, op)?;
        Ok(f64::from_le_bytes(out[..8].try_into().unwrap()))
    }

    /// Typed all-reduce convenience for one `u64`.
    pub fn allreduce_u64(&mut self, x: u64, op: &ReduceOp) -> Result<u64> {
        let out = self.allreduce(&x.to_le_bytes(), BasicType::U64, op)?;
        Ok(u64::from_le_bytes(out[..8].try_into().unwrap()))
    }

    /// Inclusive prefix scan: rank `i` folds contributions of ranks `0..=i`
    /// in rank order. Streams follow the dependency chain (every `j < i`
    /// sends to `i`), so "any result of MPI_Scan is either stored in the log
    /// or is computed after the logging... along this dependency chain".
    pub fn scan(&mut self, data: &[u8], ty: BasicType, op: &ReduceOp) -> Result<Vec<u8>> {
        let call = self.next_call();
        let me = self.rank();
        let n = self.nranks();
        let payload = self.shared_payload(data);
        for dst in me + 1..n {
            self.stream_send_payload(
                dst,
                COMM_WORLD.0,
                StreamKind::Coll { call },
                payload.clone(),
            )?;
        }
        let mut acc: Option<Vec<u8>> = None;
        for src in 0..me {
            let part = self.stream_recv_coll(src, COMM_WORLD.0, call)?;
            match &mut acc {
                None => acc = Some(part),
                Some(a) => fold_into(op, a, &part, ty).map_err(crate::api::C3Error::Mpi)?,
            }
        }
        match acc {
            None => Ok(data.to_vec()),
            Some(mut a) => {
                fold_into(op, &mut a, data, ty).map_err(crate::api::C3Error::Mpi)?;
                Ok(a)
            }
        }
    }
}
