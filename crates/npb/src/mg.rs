//! MG — multigrid V-cycles on a 1D periodic Helmholtz problem.
//!
//! Block-partitioned ring grid with one-point halo exchanges at every
//! smoothing, restriction and prolongation step; the coarsest level is
//! gathered to rank 0, solved directly (cyclic Thomas), and broadcast back.
//! The periodic domain mirrors the real NAS MG benchmark (whose 3D grid is
//! periodic) and makes coarsening geometrically exact for power-of-two
//! grids. MG is the one benchmark in the paper's set that calls
//! `MPI_Barrier` *during* the computation — a barrier closes every V-cycle
//! here too.

use crate::backend::{Comm, Op};
use crate::grid::{apply_helmholtz, gather_solve_bcast, h2_of, jacobi, prolong_add, restrict_fw};
use mpisim::MpiError;
use statesave::codec::{Decoder, Encoder};

/// MG parameters.
#[derive(Clone, Copy, Debug)]
pub struct MgConfig {
    /// log2 of the finest grid size (grid has `2^k + 1` points; interior
    /// unknowns are distributed).
    pub log2_n: u32,
    /// V-cycles.
    pub cycles: u64,
    /// Jacobi pre/post smoothing sweeps per level.
    pub smooth: usize,
}

impl MgConfig {
    /// Class presets.
    pub fn class(c: crate::Class) -> Self {
        match c {
            crate::Class::S => MgConfig { log2_n: 8, cycles: 4, smooth: 2 },
            crate::Class::W => MgConfig { log2_n: 12, cycles: 8, smooth: 2 },
            crate::Class::A => MgConfig { log2_n: 16, cycles: 12, smooth: 3 },
        }
    }
}

/// A distributed level: each rank holds `n / p` points of an `n`-point
/// ring (n a power of two, p dividing n at every level we descend to).
struct Level {
    /// Global points at this level.
    n: usize,
    /// Mesh spacing squared.
    h2: f64,
}

/// Coarse floor of the V-cycle ladder: rank-count independent so the
/// numerical result does not depend on `p` (for `p <= COARSEST / 2`).
const COARSEST: usize = 32;

/// One V-cycle; recursion bottoms out with a gather-solve-bcast on rank 0.
fn vcycle<C: Comm>(
    comm: &mut C,
    u: &mut [f64],
    f: &[f64],
    lvl: Level,
    smooth_sweeps: usize,
) -> Result<(), MpiError> {
    if lvl.n <= COARSEST {
        // Solve the *residual* equation exactly so the bottom-out is correct
        // even when `u` is non-zero (e.g. a tiny top-level grid).
        let res = {
            let au = apply_helmholtz(comm, u, lvl.h2, 300)?;
            f.iter().zip(&au).map(|(fv, av)| fv - av).collect::<Vec<f64>>()
        };
        let e = gather_solve_bcast(comm, &res, lvl.n, lvl.h2)?;
        for (ui, ei) in u.iter_mut().zip(&e) {
            *ui += ei;
        }
        return Ok(());
    }
    jacobi(comm, u, f, lvl.h2, smooth_sweeps, 200)?;
    let res = {
        let au = apply_helmholtz(comm, u, lvl.h2, 310)?;
        f.iter().zip(&au).map(|(fv, av)| fv - av).collect::<Vec<f64>>()
    };
    let coarse_f = restrict_fw(comm, &res, 400)?;
    let mut coarse_u = vec![0.0; coarse_f.len()];
    let coarse_lvl = Level { n: lvl.n / 2, h2: h2_of(lvl.n / 2) };
    vcycle(comm, &mut coarse_u, &coarse_f, coarse_lvl, smooth_sweeps)?;
    prolong_add(comm, &coarse_u, u, 500)?;
    jacobi(comm, u, f, lvl.h2, smooth_sweeps, 210)?;
    Ok(())
}

struct MgState {
    cycle: u64,
    u: Vec<f64>,
}

impl MgState {
    fn save(&self, e: &mut Encoder) {
        e.u64(self.cycle);
        e.f64_slice(&self.u);
    }
    fn load(b: &[u8]) -> Result<Self, MpiError> {
        let mut d = Decoder::new(b);
        let conv = |e: statesave::codec::CodecError| MpiError::Internal(e.to_string());
        Ok(MgState { cycle: d.u64().map_err(conv)?, u: d.f64_vec().map_err(conv)? })
    }
}

/// Run MG; returns the final residual norm.
pub fn run<C: Comm>(comm: &mut C, cfg: &MgConfig) -> Result<f64, MpiError> {
    let p = comm.nranks();
    let n = 1usize << cfg.log2_n;
    if !n.is_multiple_of(p) || (n / p) & 1 != 0 {
        return Err(MpiError::InvalidArg(format!("MG needs p | n with even shares; n={n} p={p}")));
    }
    if p > COARSEST / 2 {
        return Err(MpiError::InvalidArg(format!("MG supports at most {} ranks", COARSEST / 2)));
    }
    let share = n / p;
    let lo = comm.rank() * share;
    let lvl = Level { n, h2: h2_of(n) };
    let f: Vec<f64> = (0..share)
        .map(|i| {
            let x = (lo + i) as f64 / n as f64;
            (2.0 * std::f64::consts::PI * x).sin() + 0.5 * (6.0 * std::f64::consts::PI * x).sin()
        })
        .collect();

    let mut st = match comm.take_restored_state() {
        Some(b) => MgState::load(&b)?,
        None => MgState { cycle: 0, u: vec![0.0; share] },
    };

    while st.cycle < cfg.cycles {
        vcycle(comm, &mut st.u, &f, Level { n: lvl.n, h2: lvl.h2 }, cfg.smooth)?;
        // MG is the benchmark that calls MPI_Barrier during computation.
        comm.barrier()?;
        st.cycle += 1;
        comm.pragma(&mut |e| st.save(e))?;
    }

    let res = {
        let au = apply_helmholtz(comm, &st.u, lvl.h2, 320)?;
        f.iter().zip(&au).map(|(fv, av)| fv - av).collect::<Vec<f64>>()
    };
    let local: f64 = res.iter().map(|x| x * x).sum();
    let norm = comm.allreduce_f64(local, Op::Sum)?;
    Ok((norm / n as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcycles_reduce_residual() {
        let cfg = MgConfig { log2_n: 8, cycles: 6, smooth: 2 };
        let out = mpisim::launch(&mpisim::JobSpec::new(2), |ctx| run(ctx, &cfg)).unwrap();
        assert!(out.results[0] < 1e-4, "residual too large: {}", out.results[0]);
    }

    #[test]
    fn bottom_out_is_exact_on_tiny_grid() {
        // A grid at the coarse floor is solved directly in one "cycle".
        let cfg = MgConfig { log2_n: 5, cycles: 1, smooth: 2 };
        let out = mpisim::launch(&mpisim::JobSpec::new(1), |ctx| run(ctx, &cfg)).unwrap();
        assert!(out.results[0] < 1e-10, "direct bottom-out not exact: {}", out.results[0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = MgConfig { log2_n: 7, cycles: 3, smooth: 2 };
        let serial =
            mpisim::launch(&mpisim::JobSpec::new(1), |ctx| run(ctx, &cfg)).unwrap().results[0];
        for p in [2usize, 4] {
            let par =
                mpisim::launch(&mpisim::JobSpec::new(p), |ctx| run(ctx, &cfg)).unwrap().results[0];
            assert!(
                (serial - par).abs() <= 1e-7 * serial.abs().max(1e-12),
                "p={p}: {par} vs {serial}"
            );
        }
    }
}
