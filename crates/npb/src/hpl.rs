//! HPL — right-looking LU factorization with partial pivoting and a
//! distributed triangular solve (the High-Performance Linpack skeleton).
//!
//! Columns are distributed cyclically (column `j` lives on rank `j mod p`,
//! the 1D special case of HPL's block-cyclic layout). Each elimination step
//! the panel owner selects the pivot, and broadcasts the pivot index plus the
//! multiplier column; every rank then swaps rows and updates its share of
//! the trailing matrix — broadcast-dominated communication with no global
//! barriers, exactly the property the paper highlights about HPL (§1). The
//! checkpoint location is "the top of the innermost driver loop" (§6.3),
//! i.e. the top of the panel loop here.

use crate::backend::{Comm, Op};
use mpisim::MpiError;
use statesave::codec::{Decoder, Encoder};

/// HPL parameters.
#[derive(Clone, Copy, Debug)]
pub struct HplConfig {
    /// Matrix order.
    pub n: usize,
}

impl HplConfig {
    /// Class presets.
    pub fn class(c: crate::Class) -> Self {
        match c {
            crate::Class::S => HplConfig { n: 48 },
            crate::Class::W => HplConfig { n: 128 },
            crate::Class::A => HplConfig { n: 256 },
        }
    }
}

/// Deterministic well-conditioned test matrix: diagonally dominant with
/// pseudo-random off-diagonal entries in (-0.5, 0.5).
fn a_entry(i: usize, j: usize, n: usize) -> f64 {
    if i == j {
        return n as f64;
    }
    let h = (i.wrapping_mul(0x9E3779B9).wrapping_add(j.wrapping_mul(0x85EBCA6B))) as u32;
    ((h % 4096) as f64) / 4096.0 - 0.5
}

fn b_entry(i: usize) -> f64 {
    ((i.wrapping_mul(0xC2B2AE35) % 1024) as f64) / 1024.0 + 0.5
}

struct HplState {
    /// Next elimination step (columns `0..k` are factored).
    k: usize,
    /// Local columns, each of length `n`, in ascending global-column order.
    cols: Vec<f64>,
    /// Right-hand side, replicated (pivot swaps and updates applied).
    b: Vec<f64>,
    /// Pivot row chosen at each completed step (for verification).
    piv: Vec<u64>,
}

impl HplState {
    fn save(&self, e: &mut Encoder) {
        e.usize(self.k);
        e.f64_slice(&self.cols);
        e.f64_slice(&self.b);
        e.u64_slice(&self.piv);
    }
    fn load(bytes: &[u8]) -> Result<Self, MpiError> {
        let mut d = Decoder::new(bytes);
        let conv = |e: statesave::codec::CodecError| MpiError::Internal(e.to_string());
        Ok(HplState {
            k: d.usize().map_err(conv)?,
            cols: d.f64_vec().map_err(conv)?,
            b: d.f64_vec().map_err(conv)?,
            piv: d.u64_vec().map_err(conv)?,
        })
    }
}

/// Global column index of local column `lc` on `rank`.
#[inline]
fn gcol(rank: usize, p: usize, lc: usize) -> usize {
    lc * p + rank
}

/// Number of local columns on `rank` for an order-`n` matrix.
#[inline]
fn ncols(rank: usize, p: usize, n: usize) -> usize {
    n / p + usize::from(rank < n % p)
}

/// Local column index of global column `j` (must be owned by `j % p`).
#[inline]
fn lcol(j: usize, p: usize) -> usize {
    j / p
}

/// Run HPL; returns the solution checksum `||x||_2`. A zero-tolerance
/// residual check runs inside (debug assertions) so a wrong factorization
/// cannot silently produce a "checksum".
pub fn run<C: Comm>(comm: &mut C, cfg: &HplConfig) -> Result<f64, MpiError> {
    let me = comm.rank();
    let p = comm.nranks();
    let n = cfg.n;
    let mync = ncols(me, p, n);

    let mut st = match comm.take_restored_state() {
        Some(bytes) => HplState::load(&bytes)?,
        None => {
            let mut cols = Vec::with_capacity(mync * n);
            for lc in 0..mync {
                let j = gcol(me, p, lc);
                cols.extend((0..n).map(|i| a_entry(i, j, n)));
            }
            let b = (0..n).map(b_entry).collect();
            HplState { k: 0, cols, b, piv: Vec::with_capacity(n) }
        }
    };

    while st.k < n {
        // §6.3: checkpoint at the top of the innermost driver loop.
        comm.pragma(&mut |e| st.save(e))?;
        let k = st.k;
        let owner = k % p;

        // The owner selects the pivot and forms the multiplier column.
        let mut msg: Vec<f64> = if me == owner {
            let lc = lcol(k, p);
            let col = &mut st.cols[lc * n..(lc + 1) * n];
            let mut piv = k;
            for i in k + 1..n {
                if col[i].abs() > col[piv].abs() {
                    piv = i;
                }
            }
            col.swap(k, piv);
            let d = col[k];
            debug_assert!(d.abs() > 1e-300, "HPL: zero pivot at step {k}");
            for i in k + 1..n {
                col[i] /= d;
            }
            // Payload: pivot row, then the multipliers L[k+1..n, k].
            let mut m = Vec::with_capacity(1 + n - k - 1);
            m.push(piv as f64);
            m.extend_from_slice(&col[k + 1..]);
            m
        } else {
            Vec::new()
        };
        {
            let mut bytes = mpisim::bytes_of(&msg).to_vec();
            comm.bcast_bytes(owner, &mut bytes)?;
            msg = mpisim::vec_from_bytes(&bytes);
        }
        let piv = msg[0] as usize;
        let lmult = &msg[1..]; // multipliers for rows k+1..n

        // Everyone applies the row swap to their unfactored columns and to b
        // (the owner's pivot column was swapped before the broadcast).
        if piv != k {
            for lc in 0..mync {
                let j = gcol(me, p, lc);
                if j > k {
                    st.cols.swap(lc * n + k, lc * n + piv);
                }
            }
            st.b.swap(k, piv);
        }
        // Rank-1 trailing update on owned columns j > k, and on b.
        for lc in 0..mync {
            let j = gcol(me, p, lc);
            if j > k {
                let col = &mut st.cols[lc * n..(lc + 1) * n];
                let akj = col[k];
                if akj != 0.0 {
                    for (i, &l) in lmult.iter().enumerate() {
                        col[k + 1 + i] -= l * akj;
                    }
                }
            }
        }
        let bk = st.b[k];
        if bk != 0.0 {
            for (i, &l) in lmult.iter().enumerate() {
                st.b[k + 1 + i] -= l * bk;
            }
        }
        st.piv.push(piv as u64);
        st.k += 1;
    }

    // Distributed back-substitution: U x = b. The owner of column k solves
    // x[k] and broadcasts the update contributions U[0..k, k] * x[k].
    let mut x = vec![0.0f64; n];
    let mut bb = st.b.clone();
    for k in (0..n).rev() {
        let owner = k % p;
        let mut msg: Vec<f64> = if me == owner {
            let lc = lcol(k, p);
            let col = &st.cols[lc * n..(lc + 1) * n];
            let xk = bb[k] / col[k];
            let mut m = Vec::with_capacity(1 + k);
            m.push(xk);
            m.extend(col[..k].iter().map(|&u| u * xk));
            m
        } else {
            Vec::new()
        };
        {
            let mut bytes = mpisim::bytes_of(&msg).to_vec();
            comm.bcast_bytes(owner, &mut bytes)?;
            msg = mpisim::vec_from_bytes(&bytes);
        }
        x[k] = msg[0];
        for (i, upd) in msg[1..].iter().enumerate() {
            bb[i] -= upd;
        }
    }

    // Verify the residual of the original system on rank 0's authority:
    // every rank checks its share of rows (rows are fully known since A is
    // regenerable). HPL reports a scaled residual; we assert it is tiny.
    let mut local_res: f64 = 0.0;
    for i in (me..n).step_by(p) {
        let mut ax = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            ax += a_entry(i, j, n) * xj;
        }
        local_res = local_res.max((ax - b_entry(i)).abs());
    }
    let res = comm.allreduce_f64(local_res, Op::Max)?;
    if res > 1e-6 * n as f64 {
        return Err(MpiError::Internal(format!("HPL residual check failed: {res}")));
    }

    Ok(x.iter().map(|v| v * v).sum::<f64>().sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_layout_is_a_partition() {
        for n in [10usize, 13, 48] {
            for p in [1usize, 2, 3, 5] {
                let mut seen = vec![false; n];
                for r in 0..p {
                    for lc in 0..ncols(r, p, n) {
                        let j = gcol(r, p, lc);
                        assert!(j < n);
                        assert!(!seen[j]);
                        assert_eq!(j % p, r);
                        assert_eq!(lcol(j, p), lc);
                        seen[j] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn serial_solves_the_system() {
        let cfg = HplConfig { n: 32 };
        let out = mpisim::launch(&mpisim::JobSpec::new(1), |ctx| run(ctx, &cfg)).unwrap();
        assert!(out.results[0] > 0.0); // the residual check inside run() is the real assertion
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = HplConfig { n: 40 };
        let serial =
            mpisim::launch(&mpisim::JobSpec::new(1), |ctx| run(ctx, &cfg)).unwrap().results[0];
        for p in [2usize, 3, 4] {
            let par =
                mpisim::launch(&mpisim::JobSpec::new(p), |ctx| run(ctx, &cfg)).unwrap().results[0];
            assert!(
                (serial - par).abs() <= 1e-9 * serial.abs().max(1e-12),
                "p={p}: {par} vs {serial}"
            );
        }
    }
}
